//! Path and cycle fragments, and the fragment store ("persist to disk").
//!
//! Phase 1 consumes local edges and produces *fragments*: maximal local paths
//! between odd-degree boundary vertices and local cycles anchored at a vertex.
//! Each path fragment is replaced in partition memory by a single coarse
//! "OB-pair" edge (a [`TourEdge::Virtual`] reference to the fragment); cycle
//! fragments are removed from memory entirely and only re-read during Phase 3.
//! The paper persists this book-keeping to disk; here the [`FragmentStore`]
//! plays that role (append-only, shared across partitions/workers, cheap to
//! write, only read back in Phase 3), with the same effect on the partitions'
//! *in-memory* Long accounting.
//!
//! Where the fragments physically live is a seam (`FragmentBacking`) behind
//! the store: the default backing keeps every fragment in an in-memory slab;
//! [`FragmentStore::spilling`] bounds resident fragment memory by a
//! [`SpillConfig::memory_budget_longs`] and pages the coldest fragments out
//! to a temp file, reloading them on demand during Phase 3 — the out-of-core
//! mode for circuits larger than memory. Both backings keep the modelled
//! [`disk_longs`](FragmentStore::disk_longs) accounting exact and produce
//! bit-identical circuits; the spill backing additionally reports its real
//! traffic in [`FragmentStoreStats`].

use euler_graph::{EdgeId, LocalIndex, PartitionId, VertexId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifier of a fragment in the [`FragmentStore`].
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FragmentId(pub u64);

impl FragmentId {
    /// Returns the identifier as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for FragmentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One traversed edge of a fragment, in traversal order and direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TourEdge {
    /// A real graph edge traversed from `from` to `to`.
    Real {
        /// The underlying edge.
        edge: EdgeId,
        /// Vertex the traversal enters the edge at.
        from: VertexId,
        /// Vertex the traversal leaves the edge at.
        to: VertexId,
    },
    /// A coarse edge standing for a lower-level path fragment, traversed from
    /// `from` to `to` (which are the fragment's endpoints, possibly reversed).
    Virtual {
        /// The referenced path fragment.
        fragment: FragmentId,
        /// Entry vertex.
        from: VertexId,
        /// Exit vertex.
        to: VertexId,
    },
}

impl TourEdge {
    /// Vertex this tour edge starts at.
    pub fn from(&self) -> VertexId {
        match *self {
            TourEdge::Real { from, .. } | TourEdge::Virtual { from, .. } => from,
        }
    }

    /// Vertex this tour edge ends at.
    pub fn to(&self) -> VertexId {
        match *self {
            TourEdge::Real { to, .. } | TourEdge::Virtual { to, .. } => to,
        }
    }

    /// The same tour edge traversed in the opposite direction.
    pub fn reversed(&self) -> TourEdge {
        match *self {
            TourEdge::Real { edge, from, to } => TourEdge::Real { edge, from: to, to: from },
            TourEdge::Virtual { fragment, from, to } => TourEdge::Virtual { fragment, from: to, to: from },
        }
    }

    /// True for [`TourEdge::Real`].
    pub fn is_real(&self) -> bool {
        matches!(self, TourEdge::Real { .. })
    }
}

/// Whether a fragment is an open path (OB-pair) or a closed cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FragmentKind {
    /// Maximal local path between two odd-degree boundary vertices.
    Path,
    /// Local cycle anchored at (starting and ending at) one vertex.
    Cycle,
}

/// A path or cycle found by Phase 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fragment {
    /// Identifier in the store.
    pub id: FragmentId,
    /// Path or cycle.
    pub kind: FragmentKind,
    /// Merge level at which the fragment was found (0 = leaf partitions).
    pub level: u32,
    /// Partition (current merged id) that found the fragment.
    pub partition: PartitionId,
    /// Traversed edges in order. For a path, `edges[0].from()` is the start
    /// vertex and `edges.last().to()` the end vertex; for a cycle both equal
    /// the anchor.
    pub edges: Vec<TourEdge>,
}

impl Fragment {
    /// Start vertex (first tour edge's source). Cycles start at their anchor.
    pub fn start(&self) -> VertexId {
        self.edges.first().expect("fragments are never empty").from()
    }

    /// End vertex (last tour edge's target). Equals [`start`](Self::start)
    /// for cycles.
    pub fn end(&self) -> VertexId {
        self.edges.last().expect("fragments are never empty").to()
    }

    /// Number of tour edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Fragments are never empty, but the standard pairing is provided.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// All distinct vertices that appear as tour-edge endpoints, in first-seen
    /// order. These are the "visible" vertices at this fragment's granularity
    /// (vertices interior to nested virtual edges are not included).
    /// De-duplication runs over an interned slot bitmap rather than a hash
    /// set.
    pub fn visible_vertices(&self) -> Vec<VertexId> {
        let index =
            LocalIndex::from_vertices(self.edges.iter().flat_map(|e| [e.from(), e.to()]));
        let mut seen: Vec<bool> = index.zeroed();
        let mut out = Vec::with_capacity(index.len());
        for e in &self.edges {
            for v in [e.from(), e.to()] {
                let s = index.slot(v).expect("endpoint interned") as usize;
                if !seen[s] {
                    seen[s] = true;
                    out.push(v);
                }
            }
        }
        out
    }

    /// Checks the internal chaining invariant: consecutive tour edges share a
    /// vertex and (for cycles) the fragment closes.
    pub fn is_well_formed(&self) -> bool {
        if self.edges.is_empty() {
            return false;
        }
        for w in self.edges.windows(2) {
            if w[0].to() != w[1].from() {
                return false;
            }
        }
        match self.kind {
            FragmentKind::Cycle => self.start() == self.end(),
            FragmentKind::Path => true,
        }
    }

    /// Number of Longs the fragment occupies *on disk* (not in partition
    /// memory): kind/level/partition header plus 3 per tour edge.
    pub fn disk_longs(&self) -> u64 {
        4 + 3 * self.edges.len() as u64
    }
}

/// Live statistics of a fragment store's backing — the real (not modelled)
/// memory and spill traffic, in the paper's Long units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FragmentStoreStats {
    /// Longs of fragment payload currently resident in memory.
    pub resident_longs: u64,
    /// High-water mark of `resident_longs` over the store's lifetime.
    pub peak_resident_longs: u64,
    /// Fragments whose current version lives in the spill file.
    pub spilled_fragments: u64,
    /// Longs written to the spill file (superseded versions included).
    pub spill_write_longs: u64,
    /// Longs read back from the spill file (Phase-3 reload traffic).
    pub spill_read_longs: u64,
    /// Spill I/O failures absorbed by keeping the fragment resident.
    pub spill_errors: u64,
    /// Longs of superseded `replace` records currently dead in the spill
    /// file — exactly the free extents awaiting reuse. Every file Long is
    /// either part of a live record or counted here, so
    /// `spill_file_longs == live record Longs + dead_longs` at all times.
    pub dead_longs: u64,
    /// Current spill-file extent in Longs (file bytes / 8). Bounded under
    /// replace-heavy traffic because superseded records are reused through
    /// the free list instead of growing the file monotonically.
    pub spill_file_longs: u64,
    /// Evictions decided by push order (no [`ReadSchedule`] supplied).
    pub evictions_fifo: u64,
    /// Evictions decided by the merge-tree read schedule (farthest next
    /// reader first).
    pub evictions_scheduled: u64,
    /// Longs of reload traffic the schedule saved versus plain FIFO: reads
    /// that hit a resident fragment which a FIFO store with the same budget
    /// and push/replace history would already have paged out. Maintained by
    /// an exact shadow simulation of the FIFO policy; only meaningful (and
    /// only nonzero) when a schedule is set.
    pub reload_longs_avoided: u64,
}

/// When each fragment will next be read back, keyed by the `(level,
/// partition)` it was pushed under — both are known at push time, and the
/// merge tree statically determines the consuming side. The pipeline derives
/// one from the [`MergeTree`](crate::merge_tree::MergeTree) and hands it to
/// spill-backed stores ([`FragmentStore::set_read_schedule`]) so eviction can
/// page out the fragment whose reader is *farthest* in the future
/// (Belady-style) instead of the oldest one.
///
/// "Read steps" are an arbitrary monotone clock: the pipeline announces the
/// current step with [`FragmentStore::begin_read_step`], and fragments whose
/// scheduled step equals the current one are pinned (evicted only when the
/// budget cannot be met any other way, preserving the peak-resident bound).
#[derive(Clone, Debug, Default)]
pub struct ReadSchedule {
    steps: HashMap<(u32, u32), u64>,
    default_step: u64,
}

impl ReadSchedule {
    /// A schedule where unmapped `(level, partition)` keys read at
    /// `default_step`.
    pub fn new(default_step: u64) -> Self {
        ReadSchedule { steps: HashMap::new(), default_step }
    }

    /// Declares that fragments pushed at `(level, partition)` are next read
    /// at `step`.
    pub fn set(&mut self, level: u32, partition: PartitionId, step: u64) {
        self.steps.insert((level, partition.0), step);
    }

    /// The read step for fragments pushed at `(level, partition)`.
    pub fn step_for(&self, level: u32, partition: PartitionId) -> u64 {
        self.steps.get(&(level, partition.0)).copied().unwrap_or(self.default_step)
    }
}

/// Configuration of the out-of-core spill backing
/// ([`FragmentStore::spilling`]).
#[derive(Clone, Debug)]
pub struct SpillConfig {
    /// Resident fragment budget in Longs (a fragment occupies
    /// [`Fragment::disk_longs`] Longs). When the resident set exceeds the
    /// budget, the coldest (oldest) fragments are paged out to the spill
    /// file until it fits again.
    pub memory_budget_longs: u64,
    /// Directory the spill file is created in (default:
    /// [`std::env::temp_dir`]). The file is unlinked immediately after
    /// creation, so it never outlives the store.
    pub directory: Option<PathBuf>,
}

impl SpillConfig {
    /// A spill configuration with the given resident budget in Longs.
    pub fn with_budget(memory_budget_longs: u64) -> Self {
        SpillConfig { memory_budget_longs, directory: None }
    }

    /// Overrides the spill-file directory (tests use this to provoke and
    /// observe spill I/O failures).
    pub fn in_directory(mut self, directory: impl Into<PathBuf>) -> Self {
        self.directory = Some(directory.into());
        self
    }
}

/// The storage seam behind [`FragmentStore`]: where fragments physically
/// live. Implementations own the accounting so the store can answer
/// [`disk_longs`](FragmentStore::disk_longs) /
/// [`total_real_edges`](FragmentStore::total_real_edges) without touching
/// the fragments.
trait FragmentBacking: Send {
    fn push(&mut self, fragment: Fragment) -> FragmentId;
    fn get(&mut self, id: FragmentId) -> Fragment;
    fn replace(&mut self, id: FragmentId, fragment: Fragment);
    fn len(&self) -> usize;
    /// The contiguous slab, when the backing has one (memory backing only) —
    /// what makes [`FragmentStore::with_all`] zero-copy there.
    fn as_slice(&self) -> Option<&[Fragment]>;
    /// Visits every fragment in id order. Spilled fragments are decoded into
    /// a scratch buffer one at a time; nothing is retained.
    fn for_each(&mut self, f: &mut dyn FnMut(&Fragment));
    fn cycle_ids(&self) -> Vec<FragmentId>;
    /// `(visible vertex, cycle id)` pairs over every cycle fragment, cycles
    /// in id order and vertices in first-seen order within each — the
    /// Phase-3 splice index. Answered without touching spilled payloads:
    /// backings capture the vertex lists at `push`/`replace` time, while the
    /// fragment is still resident.
    fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)>;
    fn disk_longs(&self) -> u64;
    fn total_real_edges(&self) -> u64;
    fn stats(&self) -> FragmentStoreStats;
    /// Installs a next-reader schedule. Backings without an eviction policy
    /// (the in-memory slab) ignore it.
    fn set_read_schedule(&mut self, _schedule: ReadSchedule) {}
    /// Announces the current read step of the schedule's clock; fragments
    /// scheduled for this step become pinned. Ignored without a schedule.
    fn begin_read_step(&mut self, _step: u64) {}
}

/// Shared bookkeeping of both backings: the modelled "persisted to disk"
/// Long count and the real-edge tally, maintained exactly across
/// `push`/`replace`.
#[derive(Debug, Default)]
struct Accounting {
    disk_longs: u64,
    real_edges: u64,
}

impl Accounting {
    fn add(&mut self, f: &Fragment) {
        self.disk_longs += f.disk_longs();
        self.real_edges += f.edges.iter().filter(|e| e.is_real()).count() as u64;
    }

    fn remove(&mut self, f: &Fragment) {
        self.disk_longs -= f.disk_longs();
        self.real_edges -= f.edges.iter().filter(|e| e.is_real()).count() as u64;
    }
}

/// The default backing: every fragment lives in one in-memory slab.
#[derive(Debug, Default)]
struct MemoryBacking {
    frags: Vec<Fragment>,
    accounting: Accounting,
    peak_longs: u64,
}

impl FragmentBacking for MemoryBacking {
    fn push(&mut self, mut fragment: Fragment) -> FragmentId {
        let id = FragmentId(self.frags.len() as u64);
        fragment.id = id;
        self.accounting.add(&fragment);
        self.peak_longs = self.peak_longs.max(self.accounting.disk_longs);
        self.frags.push(fragment);
        id
    }

    fn get(&mut self, id: FragmentId) -> Fragment {
        self.frags[id.index()].clone()
    }

    fn replace(&mut self, id: FragmentId, mut fragment: Fragment) {
        fragment.id = id;
        self.accounting.remove(&self.frags[id.index()]);
        self.accounting.add(&fragment);
        self.peak_longs = self.peak_longs.max(self.accounting.disk_longs);
        self.frags[id.index()] = fragment;
    }

    fn len(&self) -> usize {
        self.frags.len()
    }

    fn as_slice(&self) -> Option<&[Fragment]> {
        Some(&self.frags)
    }

    fn for_each(&mut self, f: &mut dyn FnMut(&Fragment)) {
        for frag in &self.frags {
            f(frag);
        }
    }

    fn cycle_ids(&self) -> Vec<FragmentId> {
        self.frags.iter().filter(|f| f.kind == FragmentKind::Cycle).map(|f| f.id).collect()
    }

    fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)> {
        // Everything is resident, so the pairs are computed straight off the
        // slab; no captured lists needed.
        let mut pairs = Vec::new();
        for f in &self.frags {
            if f.kind == FragmentKind::Cycle {
                for v in f.visible_vertices() {
                    pairs.push((v, f.id));
                }
            }
        }
        pairs
    }

    fn disk_longs(&self) -> u64 {
        self.accounting.disk_longs
    }

    fn total_real_edges(&self) -> u64 {
        self.accounting.real_edges
    }

    fn stats(&self) -> FragmentStoreStats {
        FragmentStoreStats {
            resident_longs: self.accounting.disk_longs,
            peak_resident_longs: self.peak_longs,
            ..Default::default()
        }
    }
}

/// Where a spill-backed fragment's current version lives.
#[derive(Clone, Copy, Debug)]
enum Loc {
    Resident,
    Spilled {
        offset: u64,
        words: u64,
    },
}

/// Per-fragment index entry of the spill backing: enough to answer kind,
/// size and accounting queries without touching the payload.
#[derive(Clone, Copy, Debug)]
struct SlotMeta {
    kind: FragmentKind,
    longs: u64,
    reals: u64,
    loc: Loc,
    /// Merge level the current version was pushed/replaced under — the
    /// schedule key, kept so a late [`ReadSchedule`] can still be applied.
    level: u32,
    /// Partition id the current version was pushed/replaced under.
    partition: u32,
    /// Scheduled read step of the current version (0 without a schedule).
    next_read: u64,
    /// Current eviction key: `next_read`, or `u64::MAX` once the scheduled
    /// read has passed (an overdue fragment will not be read again, so it is
    /// the best possible victim). Heap entries carry the key they were
    /// pushed with; a mismatch marks them stale (lazy deletion).
    evict_key: u64,
    /// Push sequence number — the FIFO tie-break among equal eviction keys.
    seq: u64,
}

/// An eviction candidate in the scheduled-mode max-heap: farthest
/// `key` first, oldest `seq` first among equals (FIFO tie-break).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EvictEntry {
    key: u64,
    seq: u64,
    id: u64,
}

impl Ord for EvictEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, std::cmp::Reverse(self.seq), self.id).cmp(&(
            other.key,
            std::cmp::Reverse(other.seq),
            other.id,
        ))
    }
}

impl PartialOrd for EvictEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Flat `u64` record of one fragment in the spill file:
/// `[kind, level, partition, n]` then `n` tour edges of
/// `[tag, id, from, to]` (tag 0 = real, 1 = virtual). The id is not stored —
/// the index knows it. The distributed worker reuses this record as its
/// checkpoint/shipping format for fragments, hence the crate visibility.
pub(crate) fn encode_fragment(f: &Fragment, out: &mut Vec<u64>) {
    out.clear();
    out.reserve(4 + 4 * f.edges.len());
    out.push(match f.kind {
        FragmentKind::Path => 0,
        FragmentKind::Cycle => 1,
    });
    out.push(f.level as u64);
    out.push(f.partition.0 as u64);
    out.push(f.edges.len() as u64);
    for e in &f.edges {
        match *e {
            TourEdge::Real { edge, from, to } => {
                out.extend_from_slice(&[0, edge.0, from.0, to.0]);
            }
            TourEdge::Virtual { fragment, from, to } => {
                out.extend_from_slice(&[1, fragment.0, from.0, to.0]);
            }
        }
    }
}

pub(crate) fn decode_fragment(id: FragmentId, words: &[u64]) -> Fragment {
    let kind = if words[0] == 0 { FragmentKind::Path } else { FragmentKind::Cycle };
    let n = words[3] as usize;
    let mut edges = Vec::with_capacity(n);
    for rec in words[4..4 + 4 * n].chunks_exact(4) {
        let (from, to) = (VertexId(rec[2]), VertexId(rec[3]));
        edges.push(if rec[0] == 0 {
            TourEdge::Real { edge: EdgeId(rec[1]), from, to }
        } else {
            TourEdge::Virtual { fragment: FragmentId(rec[1]), from, to }
        });
    }
    Fragment { id, kind, level: words[1] as u32, partition: PartitionId(words[2] as u32), edges }
}

/// Distinguishes concurrently-live spill files of one process.
static SPILL_FILE_SEQ: AtomicU64 = AtomicU64::new(0);

/// The out-of-core backing: a bounded resident set plus a spill file.
///
/// Eviction runs in one of two modes. Without a [`ReadSchedule`] it is
/// oldest-first (push order): low-level fragments are the ones Phase 3
/// reaches last, so they go cold first. With a schedule installed it is
/// Belady-style: the victim is the resident fragment whose scheduled next
/// reader is *farthest* in the future (overdue fragments — scheduled step
/// already passed — rank as "never read again" and go first), with push
/// order as the tie-break; fragments whose reader is the *current* step are
/// pinned and only evicted when nothing else can satisfy the budget, so the
/// peak-resident bound (budget + one fragment) holds unconditionally. A
/// shadow simulation of the FIFO policy runs alongside the scheduled mode
/// to account [`FragmentStoreStats::reload_longs_avoided`] exactly.
///
/// A spill I/O failure is absorbed, not propagated — the fragment stays
/// resident, the failure is counted in
/// [`FragmentStoreStats::spill_errors`] and no further spilling is
/// attempted, so an interrupted spill degrades to the in-memory backing
/// with identical results.
/// One reusable extent of the spill file: a superseded record's former
/// location.
#[derive(Clone, Copy, Debug)]
struct FreeExtent {
    /// Byte offset into the spill file.
    offset: u64,
    /// Extent length in words (Longs).
    words: u64,
}

struct SpillBacking {
    budget_longs: u64,
    directory: PathBuf,
    index: Vec<SlotMeta>,
    /// Visible-vertex lists of cycle fragments (empty for paths), captured
    /// while the fragment was resident — the Phase-3 splice index, answered
    /// without re-reading spilled payloads.
    cycle_vis: Vec<Vec<VertexId>>,
    resident: HashMap<u64, Fragment>,
    /// Resident ids, oldest first — the eviction order of the FIFO mode.
    fifo: VecDeque<u64>,
    /// Merge-tree read schedule; `None` means FIFO mode.
    schedule: Option<ReadSchedule>,
    /// The schedule clock's current read step.
    current_step: u64,
    /// Next push sequence number (FIFO tie-break in scheduled mode).
    next_seq: u64,
    /// Scheduled-mode eviction candidates, farthest next reader on top.
    /// Entries whose `(key, seq)` no longer match the slot's meta, or whose
    /// fragment is not resident, are stale and skipped on pop.
    heap: BinaryHeap<EvictEntry>,
    /// Shadow FIFO simulation (scheduled mode only): which fragments a
    /// plain FIFO store with the same budget and push/replace history would
    /// still have resident. A read that hits resident here but shadow-
    /// spilled is a reload the schedule avoided.
    shadow_fifo: VecDeque<u64>,
    shadow_resident: HashMap<u64, u64>,
    shadow_longs: u64,
    /// Created lazily on first eviction; unlinked right after creation.
    file: Option<File>,
    file_end: u64,
    /// Extents of superseded (`replace`d) records, available for reuse —
    /// what keeps the spill file from growing monotonically under heavy
    /// replace traffic. Word-granular; adjacent extents are coalesced.
    free: Vec<FreeExtent>,
    /// Set after a spill I/O failure: stop spilling, stay resident.
    broken: bool,
    accounting: Accounting,
    stats: FragmentStoreStats,
    /// Reusable encode/IO scratch.
    words: Vec<u64>,
    bytes: Vec<u8>,
}

impl SpillBacking {
    fn new(config: SpillConfig) -> Self {
        SpillBacking {
            budget_longs: config.memory_budget_longs,
            directory: config.directory.unwrap_or_else(std::env::temp_dir),
            index: Vec::new(),
            cycle_vis: Vec::new(),
            resident: HashMap::new(),
            fifo: VecDeque::new(),
            schedule: None,
            current_step: 0,
            next_seq: 0,
            heap: BinaryHeap::new(),
            shadow_fifo: VecDeque::new(),
            shadow_resident: HashMap::new(),
            shadow_longs: 0,
            file: None,
            file_end: 0,
            free: Vec::new(),
            broken: false,
            accounting: Accounting::default(),
            stats: FragmentStoreStats::default(),
            words: Vec::new(),
            bytes: Vec::new(),
        }
    }

    /// Opens the spill file on first use. The path is unlinked immediately
    /// (the open handle keeps the data), so nothing leaks past the store.
    fn file(&mut self) -> std::io::Result<&mut File> {
        if self.file.is_none() {
            let path = self.directory.join(format!(
                "euler-fragments-{}-{}.spill",
                std::process::id(),
                SPILL_FILE_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            let file = File::options().read(true).write(true).create_new(true).open(&path)?;
            std::fs::remove_file(&path)?;
            self.file = Some(file);
        }
        Ok(self.file.as_mut().expect("just created"))
    }

    /// Returns a superseded record's extent to the free list, coalescing
    /// with adjacent free extents. The space stays in the file (and in
    /// [`FragmentStoreStats::dead_longs`]) until a later record reuses it.
    fn free_record(&mut self, mut offset: u64, mut words: u64) {
        self.stats.dead_longs += words;
        loop {
            if let Some(i) = self.free.iter().position(|e| e.offset + 8 * e.words == offset) {
                let e = self.free.swap_remove(i);
                offset = e.offset;
                words += e.words;
            } else if let Some(i) = self.free.iter().position(|e| e.offset == offset + 8 * words) {
                let e = self.free.swap_remove(i);
                words += e.words;
            } else {
                break;
            }
        }
        self.free.push(FreeExtent { offset, words });
    }

    /// Best-fit allocation from the free list: the smallest free extent that
    /// holds `words`, shrunk or consumed. `None` means the record appends at
    /// the end of the file instead.
    fn alloc_extent(&mut self, words: u64) -> Option<u64> {
        let i = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, e)| e.words >= words)
            .min_by_key(|(_, e)| e.words)
            .map(|(i, _)| i)?;
        let e = &mut self.free[i];
        let offset = e.offset;
        if e.words == words {
            self.free.swap_remove(i);
        } else {
            e.offset += 8 * words;
            e.words -= words;
        }
        self.stats.dead_longs -= words;
        Some(offset)
    }

    /// Writes `fragment`'s record into the spill file — into a reused free
    /// extent when one fits, else appended at the end — returning its
    /// location.
    fn write_record(&mut self, fragment: &Fragment) -> std::io::Result<Loc> {
        let mut words = std::mem::take(&mut self.words);
        encode_fragment(fragment, &mut words);
        let mut bytes = std::mem::take(&mut self.bytes);
        bytes.clear();
        bytes.reserve(8 * words.len());
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let need = words.len() as u64;
        let reused = self.alloc_extent(need);
        let offset = reused.unwrap_or(self.file_end);
        let out = (|| {
            let file = self.file()?;
            file.seek(SeekFrom::Start(offset))?;
            file.write_all(&bytes)?;
            Ok(Loc::Spilled { offset, words: need })
        })();
        match (&out, reused) {
            (Ok(_), None) => {
                self.file_end += bytes.len() as u64;
                self.stats.spill_file_longs = self.file_end / 8;
            }
            (Ok(_), Some(_)) => {}
            // A failed write into a reused extent leaves no valid record
            // there; the extent goes back on the free list.
            (Err(_), Some(o)) => self.free_record(o, need),
            (Err(_), None) => {}
        }
        self.words = words;
        self.bytes = bytes;
        out
    }

    /// Reads the record at `loc` back into a fragment.
    fn read_record(&mut self, id: FragmentId, offset: u64, words: u64) -> Fragment {
        let mut bytes = std::mem::take(&mut self.bytes);
        bytes.resize(8 * words as usize, 0);
        {
            let file = self.file.as_mut().expect("spilled records imply an open file");
            file.seek(SeekFrom::Start(offset)).expect("spill file seek");
            file.read_exact(&mut bytes).expect("spill file read");
        }
        let mut ws = std::mem::take(&mut self.words);
        ws.clear();
        ws.extend(bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())));
        let fragment = decode_fragment(id, &ws);
        self.words = ws;
        self.bytes = bytes;
        fragment
    }

    /// Makes `fragment` resident (newest) and re-balances under the budget.
    fn insert_resident(&mut self, fragment: Fragment) {
        let id = fragment.id.0;
        let longs = fragment.disk_longs();
        self.resident.insert(id, fragment);
        if self.schedule.is_some() {
            let m = self.index[id as usize];
            self.heap.push(EvictEntry { key: m.evict_key, seq: m.seq, id });
        } else {
            self.fifo.push_back(id);
        }
        self.stats.resident_longs += longs;
        self.stats.peak_resident_longs =
            self.stats.peak_resident_longs.max(self.stats.resident_longs);
        self.shadow_insert(id, longs);
        self.evict();
    }

    /// Pages fragments out until the resident set fits the budget, by push
    /// order (FIFO mode) or farthest next reader (scheduled mode).
    fn evict(&mut self) {
        if self.schedule.is_some() {
            self.evict_scheduled();
        } else {
            self.evict_fifo();
        }
    }

    /// FIFO mode: spills oldest-first.
    fn evict_fifo(&mut self) {
        while self.stats.resident_longs > self.budget_longs && !self.broken {
            let Some(id) = self.fifo.pop_front() else { break };
            let fragment = self.resident.remove(&id).expect("fifo ids are resident");
            match self.write_record(&fragment) {
                Ok(loc) => {
                    let longs = fragment.disk_longs();
                    self.index[id as usize].loc = loc;
                    self.stats.resident_longs -= longs;
                    self.stats.spilled_fragments += 1;
                    self.stats.spill_write_longs += longs;
                    self.stats.evictions_fifo += 1;
                }
                Err(_) => {
                    // Interrupted spill: keep the fragment resident, record
                    // the failure, and stop trying — results are unaffected.
                    self.resident.insert(id, fragment);
                    self.fifo.push_front(id);
                    self.stats.spill_errors += 1;
                    self.broken = true;
                }
            }
        }
    }

    /// True when a heap entry still describes the current state of its
    /// fragment: resident, and `(key, seq)` matching the slot meta.
    fn entry_is_live(&self, e: &EvictEntry) -> bool {
        let m = &self.index[e.id as usize];
        matches!(m.loc, Loc::Resident) && m.evict_key == e.key && m.seq == e.seq
    }

    /// Scheduled mode: spills the fragment whose next reader is farthest
    /// away (overdue fragments first of all), FIFO among equals. Fragments
    /// scheduled for the current read step are pinned — deferred until
    /// nothing else can satisfy the budget, at which point the budget
    /// invariant wins and the oldest pinned fragment goes anyway.
    fn evict_scheduled(&mut self) {
        let mut pinned: Vec<EvictEntry> = Vec::new();
        while self.stats.resident_longs > self.budget_longs && !self.broken {
            let top = loop {
                match self.heap.pop() {
                    Some(e) if self.entry_is_live(&e) => break Some(e),
                    Some(_) => continue, // stale (lazy deletion)
                    None => break None,
                }
            };
            let entry = match top {
                Some(e) if e.key == self.current_step => {
                    pinned.push(e);
                    continue;
                }
                Some(e) => e,
                // Only pinned fragments remain over budget: evict the
                // oldest of them (they popped in FIFO order).
                None if !pinned.is_empty() => pinned.remove(0),
                None => break,
            };
            let fragment =
                self.resident.remove(&entry.id).expect("live heap entries are resident");
            match self.write_record(&fragment) {
                Ok(loc) => {
                    let longs = fragment.disk_longs();
                    self.index[entry.id as usize].loc = loc;
                    self.stats.resident_longs -= longs;
                    self.stats.spilled_fragments += 1;
                    self.stats.spill_write_longs += longs;
                    self.stats.evictions_scheduled += 1;
                }
                Err(_) => {
                    self.resident.insert(entry.id, fragment);
                    self.heap.push(entry);
                    self.stats.spill_errors += 1;
                    self.broken = true;
                }
            }
        }
        // Deferred pinned fragments stay candidates for later steps.
        for e in pinned {
            self.heap.push(e);
        }
    }

    /// Mirrors a resident insertion in the shadow FIFO simulation
    /// (scheduled mode only). The shadow assumes healthy spill I/O — it
    /// tracks policy, not failures.
    fn shadow_insert(&mut self, id: u64, longs: u64) {
        if self.schedule.is_none() {
            return;
        }
        if let Some(old) = self.shadow_resident.insert(id, longs) {
            // Re-residency (replace fallback): size changes, position kept.
            self.shadow_longs -= old;
        } else {
            self.shadow_fifo.push_back(id);
        }
        self.shadow_longs += longs;
        self.shadow_evict();
    }

    /// Runs the shadow FIFO's eviction loop.
    fn shadow_evict(&mut self) {
        while self.shadow_longs > self.budget_longs {
            let Some(v) = self.shadow_fifo.pop_front() else { break };
            if let Some(l) = self.shadow_resident.remove(&v) {
                self.shadow_longs -= l;
            }
        }
    }

    /// Counts a read of a resident fragment that plain FIFO would have had
    /// to reload from disk (scheduled mode only).
    fn note_resident_read(&mut self, id: u64, longs: u64) {
        if self.schedule.is_some() && !self.shadow_resident.contains_key(&id) {
            self.stats.reload_longs_avoided += longs;
        }
    }

    /// The slot's `(next_read, evict_key)` under the current schedule.
    fn schedule_keys(&self, level: u32, partition: u32) -> (u64, u64) {
        match &self.schedule {
            Some(s) => {
                let nr = s.step_for(level, PartitionId(partition));
                let key = if nr < self.current_step { u64::MAX } else { nr };
                (nr, key)
            }
            None => (0, 0),
        }
    }
}

impl FragmentBacking for SpillBacking {
    fn push(&mut self, mut fragment: Fragment) -> FragmentId {
        let id = FragmentId(self.index.len() as u64);
        fragment.id = id;
        self.accounting.add(&fragment);
        let (next_read, evict_key) = self.schedule_keys(fragment.level, fragment.partition.0);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index.push(SlotMeta {
            kind: fragment.kind,
            longs: fragment.disk_longs(),
            reals: fragment.edges.iter().filter(|e| e.is_real()).count() as u64,
            loc: Loc::Resident,
            level: fragment.level,
            partition: fragment.partition.0,
            next_read,
            evict_key,
            seq,
        });
        self.cycle_vis.push(if fragment.kind == FragmentKind::Cycle {
            fragment.visible_vertices()
        } else {
            Vec::new()
        });
        self.insert_resident(fragment);
        id
    }

    fn get(&mut self, id: FragmentId) -> Fragment {
        let meta = self.index[id.index()];
        match meta.loc {
            Loc::Resident => {
                self.note_resident_read(id.0, meta.longs);
                self.resident[&id.0].clone()
            }
            Loc::Spilled { offset, words } => {
                self.stats.spill_read_longs += meta.longs;
                self.read_record(id, offset, words)
            }
        }
    }

    fn replace(&mut self, id: FragmentId, mut fragment: Fragment) {
        fragment.id = id;
        let meta = self.index[id.index()];
        self.accounting.disk_longs -= meta.longs;
        self.accounting.real_edges -= meta.reals;
        self.accounting.add(&fragment);
        let (next_read, evict_key) = self.schedule_keys(fragment.level, fragment.partition.0);
        let new_longs = fragment.disk_longs();
        let slot = &mut self.index[id.index()];
        slot.kind = fragment.kind;
        slot.longs = new_longs;
        slot.reals = fragment.edges.iter().filter(|e| e.is_real()).count() as u64;
        slot.level = fragment.level;
        slot.partition = fragment.partition.0;
        slot.next_read = next_read;
        slot.evict_key = evict_key;
        // `seq` is deliberately kept: a replace does not move the fragment
        // in the FIFO tie-break order, matching the FIFO mode (and shadow).
        let seq = slot.seq;
        self.cycle_vis[id.index()] = if fragment.kind == FragmentKind::Cycle {
            fragment.visible_vertices()
        } else {
            Vec::new()
        };
        // Shadow FIFO: a replace never changes residency there (resident
        // stays resident, spilled stays spilled), only the resident size.
        if let Some(l) = self.shadow_resident.get_mut(&id.0) {
            self.shadow_longs = self.shadow_longs - *l + new_longs;
            *l = new_longs;
            self.shadow_evict();
        }
        match meta.loc {
            Loc::Resident => {
                let old = self.resident.insert(id.0, fragment).expect("resident");
                self.stats.resident_longs -= old.disk_longs();
                self.stats.resident_longs += new_longs;
                self.stats.peak_resident_longs =
                    self.stats.peak_resident_longs.max(self.stats.resident_longs);
                if self.schedule.is_some() {
                    // The old heap entry is stale iff the key changed; a
                    // fresh one keeps the slot evictable either way.
                    self.heap.push(EvictEntry { key: evict_key, seq, id: id.0 });
                }
                self.evict();
            }
            Loc::Spilled { offset, words } => {
                // Supersede the spilled record with a fresh one; the old
                // record's extent joins the free list for reuse, so heavy
                // replace traffic cannot grow the spill file without bound.
                // (The new record never lands on the old extent — it is not
                // free until the write has succeeded — so a torn write can
                // not corrupt the still-current version.)
                if !self.broken {
                    if let Ok(loc) = self.write_record(&fragment) {
                        self.index[id.index()].loc = loc;
                        self.stats.spill_write_longs += self.index[id.index()].longs;
                        self.free_record(offset, words);
                        return;
                    }
                    self.stats.spill_errors += 1;
                    self.broken = true;
                }
                // Spill unavailable: bring the new version back resident.
                // The old on-disk record is dead either way.
                self.free_record(offset, words);
                self.stats.spilled_fragments -= 1;
                self.index[id.index()].loc = Loc::Resident;
                self.insert_resident(fragment);
            }
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    fn as_slice(&self) -> Option<&[Fragment]> {
        None
    }

    fn for_each(&mut self, f: &mut dyn FnMut(&Fragment)) {
        for i in 0..self.index.len() {
            let id = FragmentId(i as u64);
            match self.index[i].loc {
                Loc::Resident => {
                    let longs = self.index[i].longs;
                    self.note_resident_read(id.0, longs);
                    f(&self.resident[&id.0]);
                }
                Loc::Spilled { offset, words } => {
                    self.stats.spill_read_longs += self.index[i].longs;
                    let fragment = self.read_record(id, offset, words);
                    f(&fragment);
                }
            }
        }
    }

    fn cycle_ids(&self) -> Vec<FragmentId> {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, m)| m.kind == FragmentKind::Cycle)
            .map(|(i, _)| FragmentId(i as u64))
            .collect()
    }

    fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)> {
        let mut pairs = Vec::new();
        for (i, vis) in self.cycle_vis.iter().enumerate() {
            for &v in vis {
                pairs.push((v, FragmentId(i as u64)));
            }
        }
        pairs
    }

    fn disk_longs(&self) -> u64 {
        self.accounting.disk_longs
    }

    fn total_real_edges(&self) -> u64 {
        self.accounting.real_edges
    }

    fn stats(&self) -> FragmentStoreStats {
        self.stats
    }

    fn set_read_schedule(&mut self, schedule: ReadSchedule) {
        self.schedule = Some(schedule);
        // Re-key every slot under the new schedule and migrate the FIFO
        // queue into the heap (push order becomes the tie-break, so the
        // queue's order is preserved among equal keys). The shadow FIFO
        // starts from the same resident set in the same order: before this
        // point both policies behaved identically.
        for i in 0..self.index.len() {
            let m = self.index[i];
            let (next_read, evict_key) = self.schedule_keys(m.level, m.partition);
            self.index[i].next_read = next_read;
            self.index[i].evict_key = evict_key;
        }
        while let Some(id) = self.fifo.pop_front() {
            let m = self.index[id as usize];
            self.heap.push(EvictEntry { key: m.evict_key, seq: m.seq, id });
            self.shadow_resident.insert(id, m.longs);
            self.shadow_fifo.push_back(id);
            self.shadow_longs += m.longs;
        }
        self.shadow_evict();
        self.evict();
    }

    fn begin_read_step(&mut self, step: u64) {
        self.current_step = step;
        if self.schedule.is_none() {
            return;
        }
        // Resident fragments whose scheduled read has now passed will not
        // be read again: re-key them to "never needed" so they are the
        // first victims from here on.
        for i in 0..self.index.len() {
            let m = self.index[i];
            if matches!(m.loc, Loc::Resident) && m.next_read < step && m.evict_key != u64::MAX {
                self.index[i].evict_key = u64::MAX;
                self.heap.push(EvictEntry { key: u64::MAX, seq: m.seq, id: i as u64 });
            }
        }
    }
}

/// Append-only store of fragments, shared across partitions and workers.
///
/// Plays the role of the paper's per-partition disk persistence: writes are
/// cheap and do not count toward partition memory; Phase 3 reads everything
/// back once. Storage is pluggable behind the store: [`FragmentStore::new`]
/// keeps every fragment in memory, [`FragmentStore::spilling`] bounds
/// resident fragment memory and pages cold fragments to a temp file (see
/// [`SpillConfig`]). Either way the modelled accounting
/// ([`disk_longs`](Self::disk_longs), [`total_real_edges`](Self::total_real_edges))
/// is exact and identical.
#[derive(Clone)]
pub struct FragmentStore {
    inner: Arc<Mutex<Box<dyn FragmentBacking>>>,
}

impl Default for FragmentStore {
    fn default() -> Self {
        let backing: Box<dyn FragmentBacking> = Box::<MemoryBacking>::default();
        FragmentStore { inner: Arc::new(Mutex::new(backing)) }
    }
}

impl std::fmt::Debug for FragmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("FragmentStore")
            .field("len", &inner.len())
            .field("stats", &inner.stats())
            .finish()
    }
}

impl FragmentStore {
    /// Creates an empty store with the in-memory backing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty store whose resident fragment memory is bounded by
    /// `config.memory_budget_longs`; overflow pages to a temp file and is
    /// reloaded on demand (the out-of-core mode).
    pub fn spilling(config: SpillConfig) -> Self {
        let backing: Box<dyn FragmentBacking> = Box::new(SpillBacking::new(config));
        FragmentStore { inner: Arc::new(Mutex::new(backing)) }
    }

    /// Appends a fragment, assigning and returning its id. The `id` field of
    /// the passed fragment is overwritten.
    pub fn push(&self, fragment: Fragment) -> FragmentId {
        self.inner.lock().push(fragment)
    }

    /// Returns a clone of the fragment with the given id (reloaded from the
    /// spill file if it was paged out).
    pub fn get(&self, id: FragmentId) -> Fragment {
        self.inner.lock().get(id)
    }

    /// Replaces an existing fragment (used by `mergeInto` when an internal
    /// cycle is spliced into a fragment created earlier in the same Phase-1
    /// invocation).
    pub fn replace(&self, id: FragmentId, fragment: Fragment) {
        self.inner.lock().replace(id, fragment)
    }

    /// Number of fragments stored.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no fragments are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of every fragment. **Tests and diagnostics only**: this
    /// deep-clones the whole store (and reloads everything spilled), so hot
    /// paths must use [`with_all`](Self::with_all) or
    /// [`for_each`](Self::for_each) instead.
    pub fn snapshot(&self) -> Vec<Fragment> {
        let mut all = Vec::with_capacity(self.len());
        self.for_each(|f| all.push(f.clone()));
        all
    }

    /// Runs `f` over all fragments under the lock. Zero-copy on the
    /// in-memory backing; a spill-backed store must materialise the slab
    /// first, so streaming readers prefer [`for_each`](Self::for_each).
    pub fn with_all<R>(&self, f: impl FnOnce(&[Fragment]) -> R) -> R {
        let mut inner = self.inner.lock();
        if inner.as_slice().is_some() {
            return f(inner.as_slice().expect("just checked"));
        }
        let mut all = Vec::with_capacity(inner.len());
        inner.for_each(&mut |frag| all.push(frag.clone()));
        f(&all)
    }

    /// Visits every fragment in id order under the lock, one at a time —
    /// the bounded-memory read path (Phase 3 builds its splice index here);
    /// spilled fragments are decoded into a scratch one by one.
    pub fn for_each(&self, mut f: impl FnMut(&Fragment)) {
        self.inner.lock().for_each(&mut f)
    }

    /// Ids of all cycle fragments (the ones Phase 3 must splice). Answered
    /// from the index; spilled payloads are not touched.
    pub fn cycle_ids(&self) -> Vec<FragmentId> {
        self.inner.lock().cycle_ids()
    }

    /// `(visible vertex, cycle id)` pairs over every cycle fragment — the
    /// Phase-3 splice index: cycles in id order, vertices in first-seen
    /// order within each fragment. The lists are captured at
    /// [`push`](Self::push)/[`replace`](Self::replace) time while the
    /// fragment is resident, so this costs **no spill I/O** — which is what
    /// lets Phase 3 read each spilled fragment exactly once (during the
    /// unroll walk) instead of twice.
    pub fn cycle_vertex_pairs(&self) -> Vec<(VertexId, FragmentId)> {
        self.inner.lock().cycle_vertex_pairs()
    }

    /// Total Longs written to "disk" — the paper's modelled persistence
    /// accounting, maintained exactly across `push`/`replace` on every
    /// backing.
    pub fn disk_longs(&self) -> u64 {
        self.inner.lock().disk_longs()
    }

    /// Total number of *real* edges recorded across all fragments. When the
    /// run is complete this must equal the number of graph edges.
    pub fn total_real_edges(&self) -> u64 {
        self.inner.lock().total_real_edges()
    }

    /// Real memory/spill statistics of the backing.
    pub fn stats(&self) -> FragmentStoreStats {
        self.inner.lock().stats()
    }

    /// Installs a merge-tree-derived next-reader schedule: spill-backed
    /// stores switch from FIFO to farthest-next-use eviction (see
    /// [`ReadSchedule`]); the in-memory backing ignores it.
    pub fn set_read_schedule(&self, schedule: ReadSchedule) {
        self.inner.lock().set_read_schedule(schedule)
    }

    /// Announces the current read step of the schedule's clock. Fragments
    /// scheduled to be read at this step are pinned against eviction (up to
    /// the budget invariant); fragments whose step has passed become
    /// preferred victims. A no-op without a schedule.
    pub fn begin_read_step(&self, step: u64) {
        self.inner.lock().begin_read_step(step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn real(edge: u64, from: u64, to: u64) -> TourEdge {
        TourEdge::Real { edge: EdgeId(edge), from: VertexId(from), to: VertexId(to) }
    }

    #[test]
    fn tour_edge_endpoints_and_reverse() {
        let e = real(3, 1, 2);
        assert_eq!(e.from(), VertexId(1));
        assert_eq!(e.to(), VertexId(2));
        let r = e.reversed();
        assert_eq!(r.from(), VertexId(2));
        assert_eq!(r.to(), VertexId(1));
        assert!(e.is_real());
        let v = TourEdge::Virtual { fragment: FragmentId(0), from: VertexId(5), to: VertexId(6) };
        assert!(!v.is_real());
        assert_eq!(v.reversed().from(), VertexId(6));
    }

    #[test]
    fn fragment_well_formedness() {
        let path = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 1, 2), real(1, 2, 3)],
        };
        assert!(path.is_well_formed());
        assert_eq!(path.start(), VertexId(1));
        assert_eq!(path.end(), VertexId(3));
        assert_eq!(path.len(), 2);
        assert_eq!(path.visible_vertices(), vec![VertexId(1), VertexId(2), VertexId(3)]);

        let broken = Fragment { edges: vec![real(0, 1, 2), real(1, 3, 4)], ..path.clone() };
        assert!(!broken.is_well_formed());

        let open_cycle = Fragment { kind: FragmentKind::Cycle, ..path.clone() };
        assert!(!open_cycle.is_well_formed());

        let cycle = Fragment {
            kind: FragmentKind::Cycle,
            edges: vec![real(0, 1, 2), real(1, 2, 1)],
            ..path
        };
        assert!(cycle.is_well_formed());
        assert_eq!(cycle.start(), cycle.end());
    }

    #[test]
    fn store_assigns_sequential_ids() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(999),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 0, 1)],
        };
        let id0 = store.push(f.clone());
        let id1 = store.push(f);
        assert_eq!(id0, FragmentId(0));
        assert_eq!(id1, FragmentId(1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(id1).id, id1);
        assert_eq!(store.total_real_edges(), 2);
    }

    #[test]
    fn store_replace_overwrites() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 0,
            partition: PartitionId(1),
            edges: vec![real(0, 1, 1)],
        };
        let id = store.push(f.clone());
        let longer = Fragment { edges: vec![real(0, 1, 2), real(1, 2, 1)], ..f };
        store.replace(id, longer);
        assert_eq!(store.get(id).len(), 2);
        assert_eq!(store.cycle_ids(), vec![id]);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = FragmentStore::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    store.push(Fragment {
                        id: FragmentId(0),
                        kind: FragmentKind::Path,
                        level: 0,
                        partition: PartitionId(t as u32),
                        edges: vec![real(t, t, t + 1)],
                    });
                });
            }
        });
        assert_eq!(store.len(), 4);
        let ids: std::collections::HashSet<u64> = store.snapshot().iter().map(|f| f.id.0).collect();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn disk_longs_accounting() {
        let store = FragmentStore::new();
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 0, 1), real(1, 1, 2)],
        });
        assert_eq!(store.disk_longs(), 4 + 6);
    }

    #[test]
    fn replace_keeps_accounting_exact() {
        let store = FragmentStore::new();
        let f = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(0, 1, 1)],
        };
        let id = store.push(f.clone());
        assert_eq!(store.disk_longs(), 7);
        assert_eq!(store.total_real_edges(), 1);
        let longer = Fragment { edges: vec![real(0, 1, 2), real(1, 2, 1)], ..f };
        store.replace(id, longer);
        assert_eq!(store.disk_longs(), 10);
        assert_eq!(store.total_real_edges(), 2);
    }

    // --- The spill backing. -------------------------------------------------

    /// A mix of paths, cycles and virtual edges large enough to overflow a
    /// tiny budget many times over.
    fn workload(n: u64) -> Vec<Fragment> {
        (0..n)
            .map(|i| Fragment {
                id: FragmentId(0),
                kind: if i % 3 == 0 { FragmentKind::Cycle } else { FragmentKind::Path },
                level: (i % 4) as u32,
                partition: PartitionId((i % 5) as u32),
                edges: (0..=(i % 7))
                    .map(|j| {
                        if j % 2 == 0 {
                            real(10 * i + j, j, j + 1)
                        } else {
                            TourEdge::Virtual {
                                fragment: FragmentId(i),
                                from: VertexId(j),
                                to: VertexId(j + 1),
                            }
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    /// Every observable query of the two stores must agree.
    fn assert_stores_agree(mem: &FragmentStore, spill: &FragmentStore) {
        assert_eq!(mem.len(), spill.len());
        assert_eq!(mem.disk_longs(), spill.disk_longs());
        assert_eq!(mem.total_real_edges(), spill.total_real_edges());
        assert_eq!(mem.cycle_ids(), spill.cycle_ids());
        for i in 0..mem.len() {
            let id = FragmentId(i as u64);
            let (a, b) = (mem.get(id), spill.get(id));
            assert_eq!(a.id, b.id);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.level, b.level);
            assert_eq!(a.partition, b.partition);
            assert_eq!(a.edges, b.edges);
        }
        let mut mem_all = Vec::new();
        mem.for_each(|f| mem_all.push(f.clone()));
        let mut spill_all = Vec::new();
        spill.for_each(|f| spill_all.push(f.clone()));
        assert_eq!(mem_all.len(), spill_all.len());
        for (a, b) in mem_all.iter().zip(&spill_all) {
            assert_eq!(a.edges, b.edges);
        }
        // with_all materialises the same slab either way.
        let a = mem.with_all(|f| f.len());
        let b = spill.with_all(|f| f.len());
        assert_eq!(a, b);
    }

    #[test]
    fn spill_backing_is_observably_identical_to_memory_under_a_tiny_budget() {
        let mem = FragmentStore::new();
        let spill = FragmentStore::spilling(SpillConfig::with_budget(32));
        for f in workload(40) {
            let a = mem.push(f.clone());
            let b = spill.push(f);
            assert_eq!(a, b, "backings assign the same ids");
        }
        assert_stores_agree(&mem, &spill);
        let stats = spill.stats();
        assert!(stats.spilled_fragments > 0, "a 32-Long budget must spill: {stats:?}");
        assert!(stats.spill_write_longs > 0);
        // Once pushes quiesce, eviction has brought the set under budget.
        assert!(stats.resident_longs <= 32, "resident {} over budget", stats.resident_longs);
        assert_eq!(stats.spill_errors, 0);
        // Peak never exceeds budget + one fragment (evictions run per push).
        let max_frag = workload(40).iter().map(|f| f.disk_longs()).max().unwrap();
        assert!(
            stats.peak_resident_longs <= 32 + max_frag,
            "peak {} budget 32 max fragment {max_frag}",
            stats.peak_resident_longs
        );
        // In-memory backing reports no spill traffic, full residency.
        let mem_stats = mem.stats();
        assert_eq!(mem_stats.spilled_fragments, 0);
        assert_eq!(mem_stats.resident_longs, mem.disk_longs());
    }

    #[test]
    fn zero_budget_spills_everything_and_replace_supersedes_records() {
        let store = FragmentStore::spilling(SpillConfig::with_budget(0));
        let fs = workload(12);
        for f in &fs {
            store.push(f.clone());
        }
        assert_eq!(store.stats().spilled_fragments, 12);
        assert_eq!(store.stats().resident_longs, 0);
        // Replace a spilled fragment with a longer version; reads see it.
        let longer = Fragment { edges: vec![real(7, 3, 4), real(8, 4, 3)], ..fs[5].clone() };
        store.replace(FragmentId(5), longer.clone());
        let back = store.get(FragmentId(5));
        assert_eq!(back.edges, longer.edges);
        // Accounting followed the replacement exactly.
        let expected: u64 = fs
            .iter()
            .enumerate()
            .map(|(i, f)| if i == 5 { longer.disk_longs() } else { f.disk_longs() })
            .sum();
        assert_eq!(store.disk_longs(), expected);
    }

    #[test]
    fn replace_heavy_traffic_keeps_the_spill_file_bounded() {
        let store = FragmentStore::spilling(SpillConfig::with_budget(0));
        let n = 8u64;
        let two_edges = |a: u64, b: u64, v: u64| Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(a, v, v + 1), real(b, v + 1, v + 2)],
        };
        for i in 0..n {
            store.push(two_edges(i, 100 + i, i));
        }
        let baseline = store.stats().spill_file_longs;
        assert!(baseline > 0, "a zero budget spills every push");
        // Every round supersedes every record with a same-size version.
        // Without extent reuse the file would gain `baseline` words per
        // round; with the free list it reaches a small steady state.
        let rounds = 50u64;
        for round in 1..=rounds {
            for i in 0..n {
                store.replace(FragmentId(i), two_edges(1000 * round + i, 2000 * round + i, i));
            }
        }
        let stats = store.stats();
        assert!(
            stats.spill_file_longs <= 3 * baseline,
            "{rounds} replace rounds must not grow the file {rounds}x: \
             baseline={baseline} stats={stats:?}"
        );
        // A varied-size round: shrinking replaces split free extents
        // (best-fit leaves a dead remainder), growing ones append.
        for i in 0..n {
            let f = if i % 2 == 0 {
                Fragment { edges: vec![real(9000 + i, i, i + 1)], ..two_edges(0, 0, i) }
            } else {
                Fragment {
                    edges: vec![
                        real(9100 + i, i, i + 1),
                        real(9200 + i, i + 1, i + 2),
                        real(9300 + i, i + 2, i + 3),
                    ],
                    ..two_edges(0, 0, i)
                }
            };
            store.replace(FragmentId(i), f);
        }
        // `dead_longs` is exact: the file extent is live records + dead
        // space, to the word.
        let stats = store.stats();
        let live: u64 =
            (0..n).map(|i| 4 + 4 * store.get(FragmentId(i)).edges.len() as u64).sum();
        assert_eq!(
            stats.spill_file_longs,
            live + stats.dead_longs,
            "file words must equal live record words plus dead words: {stats:?}"
        );
        // Reads still serve the latest version of every fragment.
        for i in 0..n {
            let f = store.get(FragmentId(i));
            let expect = if i % 2 == 0 { 1 } else { 3 };
            assert_eq!(f.edges.len(), expect, "fragment {i} lost its last replace");
        }
        assert_eq!(store.len(), n as usize);
    }

    #[test]
    fn interrupted_spill_recovers_to_resident_results() {
        // A spill directory that cannot exist: the first eviction fails, the
        // store records it, stops spilling and keeps everything resident —
        // with every query still exact.
        let mem = FragmentStore::new();
        let broken = FragmentStore::spilling(
            SpillConfig::with_budget(8).in_directory("/nonexistent/euler/spill/dir"),
        );
        for f in workload(20) {
            mem.push(f.clone());
            broken.push(f);
        }
        let stats = broken.stats();
        assert_eq!(stats.spill_errors, 1, "first failure disarms spilling: {stats:?}");
        assert_eq!(stats.spilled_fragments, 0);
        assert_eq!(stats.resident_longs, broken.disk_longs());
        assert_stores_agree(&mem, &broken);
    }

    #[test]
    fn cycle_vertex_pairs_agree_across_backings_and_cost_no_spill_reads() {
        let mem = FragmentStore::new();
        let spill = FragmentStore::spilling(SpillConfig::with_budget(0));
        for f in workload(30) {
            mem.push(f.clone());
            spill.push(f);
        }
        // Replace one spilled cycle with a different cycle and one with a
        // path: the captured lists must follow.
        let cycle_id = mem.cycle_ids()[1];
        let as_cycle = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 2,
            partition: PartitionId(0),
            edges: vec![real(90, 40, 41), real(91, 41, 40)],
        };
        mem.replace(cycle_id, as_cycle.clone());
        spill.replace(cycle_id, as_cycle);
        let path_id = mem.cycle_ids()[2];
        let as_path = Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 2,
            partition: PartitionId(0),
            edges: vec![real(92, 50, 51)],
        };
        mem.replace(path_id, as_path.clone());
        spill.replace(path_id, as_path);
        let reads_before = spill.stats().spill_read_longs;
        assert_eq!(mem.cycle_vertex_pairs(), spill.cycle_vertex_pairs());
        assert_eq!(
            spill.stats().spill_read_longs,
            reads_before,
            "the splice index must not touch spilled payloads"
        );
        assert!(!mem.cycle_vertex_pairs().is_empty());
    }

    // --- Merge-tree-aware (scheduled) eviction. -----------------------------

    /// A 2-edge path at `(level 0, partition pid)` — 10 modelled disk Longs,
    /// 12 spill-record words. Uniform sizes keep the traces easy to reason
    /// about: a 20-Long budget holds exactly two fragments.
    fn frag_at(pid: u32, base: u64) -> Fragment {
        Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(pid),
            edges: vec![real(base, base, base + 1), real(base + 1, base + 1, base + 2)],
        }
    }

    /// The crafted multi-level merge trace of the regression test: pushes
    /// interleaved with read steps and reads, driven identically against a
    /// scheduled and a FIFO store. Partition id doubles as fragment number.
    fn run_crafted_trace(store: &FragmentStore, schedule: Option<ReadSchedule>) {
        if let Some(s) = schedule {
            store.set_read_schedule(s);
        }
        // Step 0: A..D arrive. A and D are read at step 1, B and C not
        // until step 5 — FIFO keeps the wrong two.
        store.begin_read_step(0);
        for pid in 0..4 {
            store.push(frag_at(pid, 10 * pid as u64));
        }
        store.begin_read_step(1);
        store.get(FragmentId(0)); // A
        store.get(FragmentId(3)); // D
        // Step 2: E (read at 3) and F (read at 5) arrive; A and D are now
        // overdue and the scheduled store pages exactly them out.
        store.begin_read_step(2);
        store.push(frag_at(4, 40));
        store.push(frag_at(5, 50));
        store.begin_read_step(3);
        store.get(FragmentId(4)); // E
        // Step 4: G (read at 5) arrives.
        store.begin_read_step(4);
        store.push(frag_at(6, 60));
        store.begin_read_step(5);
        for pid in [1u64, 2, 5, 6] {
            store.get(FragmentId(pid)); // B, C, F, G
        }
    }

    fn crafted_schedule() -> ReadSchedule {
        let mut s = ReadSchedule::new(100);
        for (pid, step) in [(0, 1), (1, 5), (2, 5), (3, 1), (4, 3), (5, 5), (6, 5)] {
            s.set(0, PartitionId(pid), step);
        }
        s
    }

    #[test]
    fn scheduled_eviction_strictly_beats_fifo_on_the_crafted_trace() {
        let budget = 20; // two of the uniform 10-Long fragments
        let fifo = FragmentStore::spilling(SpillConfig::with_budget(budget));
        run_crafted_trace(&fifo, None);
        let scheduled = FragmentStore::spilling(SpillConfig::with_budget(budget));
        run_crafted_trace(&scheduled, Some(crafted_schedule()));

        let f = fifo.stats();
        let s = scheduled.stats();
        // The headline: strictly fewer Longs reloaded from the spill file.
        assert!(
            s.spill_read_longs < f.spill_read_longs,
            "scheduled must read strictly less: scheduled={s:?} fifo={f:?}"
        );
        // The shadow simulation accounts the saving exactly: every Long the
        // schedule avoided is one FIFO actually paid on the same trace.
        assert_eq!(s.spill_read_longs + s.reload_longs_avoided, f.spill_read_longs);
        assert!(s.reload_longs_avoided > 0);
        // Policy counters attribute every eviction to its mode.
        assert_eq!(s.evictions_fifo, 0);
        assert!(s.evictions_scheduled > 0);
        assert_eq!(f.evictions_scheduled, 0);
        assert!(f.evictions_fifo > 0);
        assert_eq!(f.reload_longs_avoided, 0, "no schedule, no counterfactual");
        // Both stores serve identical fragments regardless of policy.
        for pid in 0..7 {
            assert_eq!(
                fifo.get(FragmentId(pid)).edges,
                scheduled.get(FragmentId(pid)).edges
            );
        }
        // Exact-accounting invariants hold in scheduled mode: every spill
        // file word is a live record or counted dead, and the peak resident
        // set never exceeded budget + one fragment.
        for st in [&f, &s] {
            assert_eq!(st.spill_errors, 0);
            assert!(st.peak_resident_longs <= budget + 10, "peak {}", st.peak_resident_longs);
        }
        // Nothing on this trace is reloaded-then-respilled, so every live
        // file record is one 12-word eviction record.
        let s_after = scheduled.stats();
        assert_eq!(
            s_after.spill_file_longs,
            s_after.spilled_fragments * 12 + s_after.dead_longs,
            "file words = live records + dead words: {s_after:?}"
        );
    }

    #[test]
    fn pinned_fragments_survive_eviction_while_unpinned_exist() {
        // X and Z are read at the *current* step (0) — pinned. Y is read
        // far later. FIFO would evict X (oldest); the schedule evicts Y.
        let store = FragmentStore::spilling(SpillConfig::with_budget(20));
        let mut s = ReadSchedule::new(100);
        s.set(0, PartitionId(0), 0); // X
        s.set(0, PartitionId(1), 5); // Y
        s.set(0, PartitionId(2), 0); // Z
        store.set_read_schedule(s);
        store.begin_read_step(0);
        store.push(frag_at(0, 0)); // X
        store.push(frag_at(1, 10)); // Y
        store.push(frag_at(2, 20)); // Z -> over budget
        let before = store.stats();
        assert_eq!(before.evictions_scheduled, 1);
        store.get(FragmentId(0));
        store.get(FragmentId(2));
        let after = store.stats();
        assert_eq!(after.spill_read_longs, 0, "pinned X and Z stayed resident");
        store.get(FragmentId(1));
        assert_eq!(store.stats().spill_read_longs, 10, "Y was the victim");
    }

    #[test]
    fn all_pinned_overflow_still_respects_the_budget_invariant() {
        // Every fragment is scheduled for the current step: the pin must
        // yield to the budget bound, evicting in FIFO order among pinned.
        let store = FragmentStore::spilling(SpillConfig::with_budget(20));
        let mut s = ReadSchedule::new(100);
        for pid in 0..3 {
            s.set(0, PartitionId(pid), 0);
        }
        store.set_read_schedule(s);
        store.begin_read_step(0);
        for pid in 0..3 {
            store.push(frag_at(pid, 10 * pid as u64));
        }
        let stats = store.stats();
        assert!(stats.resident_longs <= 20, "budget holds: {stats:?}");
        assert!(stats.peak_resident_longs <= 20 + 10);
        assert_eq!(stats.evictions_scheduled, 1);
        // The oldest pinned fragment went (FIFO tie-break).
        store.get(FragmentId(0));
        assert_eq!(store.stats().spill_read_longs, 10);
    }

    #[test]
    fn schedule_set_mid_run_rekeys_the_existing_resident_set() {
        // Two fragments resident under FIFO; installing a schedule must
        // carry them into scheduled mode and evict by the new keys.
        let store = FragmentStore::spilling(SpillConfig::with_budget(20));
        store.push(frag_at(0, 0)); // older, but read soon (step 1)
        store.push(frag_at(1, 10)); // newer, read late (step 9)
        let mut s = ReadSchedule::new(100);
        s.set(0, PartitionId(0), 1);
        s.set(0, PartitionId(1), 9);
        store.set_read_schedule(s);
        store.push(frag_at(2, 20)); // read at 100 (default) -> the victim
        store.begin_read_step(1);
        store.get(FragmentId(0));
        store.get(FragmentId(1));
        let stats = store.stats();
        // FIFO would have paged out fragment 0; the schedule paged out 2.
        assert_eq!(stats.spill_read_longs, 0);
        assert_eq!(stats.evictions_scheduled, 1);
        store.get(FragmentId(2));
        assert_eq!(store.stats().spill_read_longs, 10);
    }

    #[test]
    fn memory_backing_ignores_schedules() {
        let store = FragmentStore::new();
        store.set_read_schedule(ReadSchedule::new(0));
        store.begin_read_step(7);
        store.push(frag_at(0, 0));
        let stats = store.stats();
        assert_eq!(stats.evictions_fifo + stats.evictions_scheduled, 0);
        assert_eq!(stats.reload_longs_avoided, 0);
        assert_eq!(store.get(FragmentId(0)).edges.len(), 2);
    }

    #[test]
    fn spilled_store_is_shareable_across_threads() {
        let store = FragmentStore::spilling(SpillConfig::with_budget(4));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = store.clone();
                s.spawn(move || {
                    store.push(Fragment {
                        id: FragmentId(0),
                        kind: FragmentKind::Path,
                        level: 0,
                        partition: PartitionId(t as u32),
                        edges: vec![real(t, t, t + 1)],
                    });
                });
            }
        });
        assert_eq!(store.len(), 4);
        assert_eq!(store.total_real_edges(), 4);
    }
}
