//! Process-per-worker distributed execution of the merge-tree walk, with
//! superstep checkpointing and kill-and-resume recovery.
//!
//! The BSP engine in `euler_bsp` simulates workers as threads of one
//! process; this module makes "distributed" real and survivable. A
//! **coordinator** (driven by [`crate::pipeline::BspBackend`] once a
//! transport is configured) owns the merge-tree walk; **workers** — OS
//! threads over the in-memory transport, or genuine OS *processes* spawned
//! via `std::process::Command` running the `euler-worker` binary over a
//! TCP/Unix socket transport — hold the partition states and execute
//! Phase 1/2, exchanging typed messages through the framed, checksummed
//! codec of [`euler_bsp::transport`].
//!
//! ## Protocol
//!
//! ```text
//! worker                         coordinator
//!   | -- Hello{worker} ------------> |      (handshake, after connect)
//!   | <-- Init{tree,seeds,plan} ---- |
//!   | -- Ready{ckpt0 longs} -------> |
//!   |                                |      per merge level L:
//!   | <-- Start{L, child states} --- |
//!   |  …compute, heartbeats…         |
//!   | -- Done{L, reports, ships,     |
//!   |         fragments, ckpt} ----> |      (barrier when all arrive)
//!   |                                |
//!   | <-- Restore{L} --------------- |      (after a detected death)
//!   | -- RestoreAck / Failed ------> |
//!   | <-- Shutdown ----------------- |
//!   | -- Bye ----------------------> |
//! ```
//!
//! ## Determinism & recovery invariant
//!
//! Fragments found by a worker carry **provisional ids** — bit 63 set, then
//! `(superstep, slot, sequence)` — so their identity is independent of
//! worker count, scheduling, and recovery history. At the last level the
//! coordinator sorts all shipped fragments by provisional id (which equals
//! the sequential in-process push order), densely renumbers them, and
//! replays them into the pipeline's fragment store: a distributed run's
//! circuit is bit-identical to the sequential in-process run, killed or
//! not.
//!
//! After each superstep a worker persists its partition states (the wire
//! codec) and that superstep's fragments (the spill record codec) to a
//! versioned checkpoint file: `ckpt-w{W}-s{K}` holds the state *entering*
//! superstep `K`. When the coordinator detects a death during superstep
//! `s` it rolls every survivor back to checkpoint `s`, respawns the dead
//! worker, restores it from the same checkpoint, re-delivers the superstep
//! `s` inputs it retained, and resumes. Without usable checkpoints it
//! falls back to a full deterministic replay from the level-0 seed.

use crate::error::EulerError;
use crate::fragment::{decode_fragment, encode_fragment, Fragment, FragmentId, FragmentStore};
use crate::merge_strategy::MergeStrategy;
use crate::merge_tree::{MergePair, MergeTree};
use crate::phase1::{Parallelism, Phase1Executor};
use crate::phase2::merge_partitions;
use crate::pipeline::{
    active_memory_longs, remote_needed_now, transfer_longs, wire, LevelOutcome,
    LevelPartitionReport,
};
use crate::state::{EdgeRef, WorkingPartition};
use euler_bsp::checkpoint::{
    checkpoint_file, read_checkpoint, write_checkpoint, CheckpointError,
};
use euler_bsp::fault::{FaultPlan, FaultPolicy, KillMode, RecoveryStats};
use euler_bsp::transport::{connect_endpoint, Connection, FrameError, Listener, Transport};
use euler_bsp::{EngineStats, SuperstepStats};
use euler_graph::PartitionId;
use euler_metrics::TimeBreakdown;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Provisional fragment identity.
// ---------------------------------------------------------------------------

/// Bit 63 marks a provisional (distributed) fragment id.
const PROV_BIT: u64 = 1 << 63;
const PROV_SS_SHIFT: u32 = 47; // 16 bits of superstep
const PROV_SLOT_SHIFT: u32 = 27; // 20 bits of slot (partition id)
const PROV_SEQ_MASK: u64 = (1 << PROV_SLOT_SHIFT) - 1; // 27 bits of sequence

/// Provisional id of the `seq`-th fragment pushed by `slot` at `superstep`.
/// Numeric order over provisional ids equals `(superstep, slot, seq)`
/// lexicographic order — the sequential in-process push order.
fn prov_id(superstep: u32, slot: u32, seq: u64) -> u64 {
    debug_assert!(superstep < 1 << 16 && slot < 1 << 20 && seq <= PROV_SEQ_MASK);
    PROV_BIT | ((superstep as u64) << PROV_SS_SHIFT) | ((slot as u64) << PROV_SLOT_SHIFT) | seq
}

/// Remaps a scratch-store id (dense, bit 63 clear) to its provisional id;
/// ids that are already provisional (earlier supersteps) pass through.
fn remap(id: FragmentId, superstep: u32, slot: u32) -> FragmentId {
    if id.0 & PROV_BIT != 0 {
        id
    } else {
        FragmentId(prov_id(superstep, slot, id.0))
    }
}

// ---------------------------------------------------------------------------
// Word-level protocol codec.
// ---------------------------------------------------------------------------

mod kind {
    pub const HELLO: u16 = 1;
    pub const INIT: u16 = 2;
    pub const READY: u16 = 3;
    pub const START: u16 = 4;
    pub const DONE: u16 = 5;
    pub const HEARTBEAT: u16 = 6;
    pub const RESTORE: u16 = 7;
    pub const RESTORE_ACK: u16 = 8;
    pub const RESTORE_FAILED: u16 = 9;
    pub const SHUTDOWN: u16 = 10;
    pub const BYE: u16 = 11;
}

fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 * words.len());
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u64>, String> {
    if !bytes.len().is_multiple_of(8) {
        return Err(format!("payload length {} is not word-aligned", bytes.len()));
    }
    Ok(bytes
        .chunks_exact(8)
        .filter_map(|c| c.try_into().ok().map(u64::from_le_bytes))
        .collect())
}

/// Bounded sequential reader over a word payload with typed failures —
/// malformed protocol payloads surface as errors, never as panics.
struct Cursor<'a> {
    words: &'a [u64],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(words: &'a [u64]) -> Self {
        Cursor { words, at: 0 }
    }

    fn u(&mut self) -> Result<u64, String> {
        let v = self
            .words
            .get(self.at)
            .copied()
            .ok_or_else(|| format!("protocol payload truncated at word {}", self.at))?;
        self.at += 1;
        Ok(v)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u64], String> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.words.len())
            .ok_or_else(|| format!("protocol payload truncated: need {n} words at {}", self.at))?;
        let s = self
            .words
            .get(self.at..end)
            .ok_or_else(|| format!("protocol payload truncated: need {n} words at {}", self.at))?;
        self.at = end;
        Ok(s)
    }

    /// Clamps a wire-declared element count to what the remaining payload
    /// could possibly hold, so `Vec::with_capacity` on garbage input cannot
    /// over-allocate or overflow — decoding then fails with a typed
    /// truncation error instead.
    fn cap(&self, n: usize) -> usize {
        n.min(self.words.len().saturating_sub(self.at))
    }
}

fn push_str(out: &mut Vec<u64>, s: &str) {
    let bytes = s.as_bytes();
    out.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        out.push(u64::from_le_bytes(w));
    }
}

fn read_str(c: &mut Cursor<'_>) -> Result<String, String> {
    let n = c.u()? as usize;
    let words = c.take(n.div_ceil(8))?;
    let mut bytes = Vec::with_capacity(n);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.truncate(n);
    String::from_utf8(bytes).map_err(|e| format!("bad utf8 in protocol string: {e}"))
}

fn encode_tree(out: &mut Vec<u64>, tree: &MergeTree) {
    out.push(tree.levels.len() as u64);
    for level in &tree.levels {
        out.push(level.len() as u64);
        for p in level {
            out.extend_from_slice(&[p.parent.0 as u64, p.child.0 as u64, p.weight]);
        }
    }
    out.push(tree.root.0 as u64);
    out.push(tree.leaves.len() as u64);
    for l in &tree.leaves {
        out.push(l.0 as u64);
    }
}

fn decode_tree(c: &mut Cursor<'_>) -> Result<MergeTree, String> {
    let n_levels = c.u()? as usize;
    let mut levels = Vec::with_capacity(c.cap(n_levels));
    for _ in 0..n_levels {
        let n_pairs = c.u()? as usize;
        let mut pairs = Vec::with_capacity(c.cap(n_pairs));
        for _ in 0..n_pairs {
            let &[parent, child, weight] = c.take(3)? else {
                return Err("merge pair: expected 3 words".into());
            };
            pairs.push(MergePair {
                parent: PartitionId(parent as u32),
                child: PartitionId(child as u32),
                weight,
            });
        }
        levels.push(pairs);
    }
    let root = PartitionId(c.u()? as u32);
    let n_leaves = c.u()? as usize;
    let leaves = c.take(n_leaves)?.iter().map(|&l| PartitionId(l as u32)).collect();
    Ok(MergeTree { levels, root, leaves })
}

/// Everything a worker needs to run, carried by the Init message.
struct InitMsg {
    worker_id: u32,
    num_workers: u32,
    strategy: MergeStrategy,
    par_mode: Parallelism,
    phase1_threads: usize,
    worker_threads: usize, // 0 = unset
    heartbeat_interval: Duration,
    kill: Option<(u32, u32)>,
    kill_mode: KillMode,
    checkpoint_dir: Option<PathBuf>,
    tree: MergeTree,
    /// Wire-encoded level-0 states of the slots this worker owns.
    seeds: Vec<Vec<u64>>,
}

fn encode_init(m: &InitMsg) -> Vec<u64> {
    let mut out = vec![m.worker_id as u64, m.num_workers as u64];
    out.push(match m.strategy {
        MergeStrategy::Duplicated => 0,
        MergeStrategy::Deduplicated => 1,
        MergeStrategy::Deferred => 2,
    });
    out.push(match m.par_mode {
        Parallelism::PerPartition => 0,
        Parallelism::IntraPartition => 1,
        Parallelism::Auto => 2,
    });
    out.push(m.phase1_threads as u64);
    out.push(m.worker_threads as u64);
    out.push(m.heartbeat_interval.as_nanos() as u64);
    match m.kill {
        Some((w, s)) => out.extend_from_slice(&[1, w as u64, s as u64]),
        None => out.extend_from_slice(&[0, 0, 0]),
    }
    out.push(match m.kill_mode {
        KillMode::Exit => 0,
        KillMode::Stall => 1,
    });
    match &m.checkpoint_dir {
        Some(d) => {
            out.push(1);
            push_str(&mut out, &d.to_string_lossy());
        }
        None => out.push(0),
    }
    encode_tree(&mut out, &m.tree);
    out.push(m.seeds.len() as u64);
    for s in &m.seeds {
        out.push(s.len() as u64);
        out.extend_from_slice(s);
    }
    out
}

fn decode_init(words: &[u64]) -> Result<InitMsg, String> {
    let mut c = Cursor::new(words);
    let worker_id = c.u()? as u32;
    let num_workers = c.u()? as u32;
    let strategy = match c.u()? {
        0 => MergeStrategy::Duplicated,
        1 => MergeStrategy::Deduplicated,
        2 => MergeStrategy::Deferred,
        t => return Err(format!("unknown merge strategy tag {t}")),
    };
    let par_mode = match c.u()? {
        0 => Parallelism::PerPartition,
        1 => Parallelism::IntraPartition,
        2 => Parallelism::Auto,
        t => return Err(format!("unknown parallelism tag {t}")),
    };
    let phase1_threads = c.u()? as usize;
    let worker_threads = c.u()? as usize;
    let heartbeat_interval = Duration::from_nanos(c.u()?);
    let kill_flag = c.u()?;
    let kill_w = c.u()? as u32;
    let kill_s = c.u()? as u32;
    let kill = (kill_flag != 0).then_some((kill_w, kill_s));
    let kill_mode = if c.u()? == 0 { KillMode::Exit } else { KillMode::Stall };
    let checkpoint_dir =
        if c.u()? != 0 { Some(PathBuf::from(read_str(&mut c)?)) } else { None };
    let tree = decode_tree(&mut c)?;
    let n_seeds = c.u()? as usize;
    let mut seeds = Vec::with_capacity(c.cap(n_seeds));
    for _ in 0..n_seeds {
        let len = c.u()? as usize;
        seeds.push(c.take(len)?.to_vec());
    }
    Ok(InitMsg {
        worker_id,
        num_workers,
        strategy,
        par_mode,
        phase1_threads,
        worker_threads,
        heartbeat_interval,
        kill,
        kill_mode,
        checkpoint_dir,
        tree,
        seeds,
    })
}

fn encode_start(superstep: u32, msgs: &[Vec<u64>]) -> Vec<u64> {
    let mut out = vec![superstep as u64, msgs.len() as u64];
    for m in msgs {
        out.push(m.len() as u64);
        out.extend_from_slice(m);
    }
    out
}

fn decode_start(words: &[u64]) -> Result<(u32, Vec<Vec<u64>>), String> {
    let mut c = Cursor::new(words);
    let superstep = c.u()? as u32;
    let n = c.u()? as usize;
    let mut msgs = Vec::with_capacity(c.cap(n));
    for _ in 0..n {
        let len = c.u()? as usize;
        msgs.push(c.take(len)?.to_vec());
    }
    Ok((superstep, msgs))
}

/// One worker's answer to a Start — its slice of the level outcome plus
/// everything the coordinator must retain (shipped states, fragments,
/// checkpoint accounting).
#[derive(Default)]
struct DoneMsg {
    superstep: u32,
    reports: Vec<LevelPartitionReport>,
    /// Post-Phase-1 `memory_longs` per report partition, for engine stats.
    post_memory: Vec<u64>,
    /// `(destination partition, wire-encoded state)` ships.
    outgoing: Vec<(u32, Vec<u64>)>,
    /// `(provisional id, spill-codec record)` fragments found this level.
    fragments: Vec<(u64, Vec<u64>)>,
    transfer_longs: u64,
    checkpoint_longs: u64,
}

fn encode_done(m: &DoneMsg) -> Vec<u64> {
    let mut out = vec![m.superstep as u64, m.reports.len() as u64];
    for (r, post) in m.reports.iter().zip(&m.post_memory) {
        out.extend_from_slice(&[
            r.partition.0 as u64,
            r.counts.even_internal,
            r.counts.even_boundary,
            r.counts.odd_boundary,
            r.counts.remote_edges,
            r.counts.local_edges,
            r.complexity,
            r.phase1_time.as_nanos() as u64,
            r.merge_time.as_nanos() as u64,
            r.memory_longs,
            r.remote_needed_now,
            r.transfer_in_longs,
            r.paths_found,
            r.cycles_found,
            r.internal_cycles_merged,
            r.splice_pivot_lookups,
            r.splice_linked_splices,
            r.splice_materialization_longs,
            *post,
        ]);
    }
    out.push(m.outgoing.len() as u64);
    for (to, words) in &m.outgoing {
        out.push(*to as u64);
        out.push(words.len() as u64);
        out.extend_from_slice(words);
    }
    out.push(m.fragments.len() as u64);
    for (id, words) in &m.fragments {
        out.push(*id);
        out.push(words.len() as u64);
        out.extend_from_slice(words);
    }
    out.push(m.transfer_longs);
    out.push(m.checkpoint_longs);
    out
}

fn decode_done(words: &[u64]) -> Result<DoneMsg, String> {
    let mut c = Cursor::new(words);
    let superstep = c.u()? as u32;
    let n_reports = c.u()? as usize;
    let mut reports = Vec::with_capacity(c.cap(n_reports));
    let mut post_memory = Vec::with_capacity(c.cap(n_reports));
    for _ in 0..n_reports {
        let &[partition, even_internal, even_boundary, odd_boundary, remote_edges, local_edges, complexity, phase1_ns, merge_ns, memory_longs, remote_needed_now, transfer_in_longs, paths_found, cycles_found, internal_cycles_merged, splice_pivot_lookups, splice_linked_splices, splice_materialization_longs, post_mem] =
            c.take(19)?
        else {
            return Err("partition report: expected 19 words".into());
        };
        reports.push(LevelPartitionReport {
            level: superstep,
            partition: PartitionId(partition as u32),
            counts: crate::state::VertexTypeCounts {
                even_internal,
                even_boundary,
                odd_boundary,
                remote_edges,
                local_edges,
            },
            complexity,
            phase1_time: Duration::from_nanos(phase1_ns),
            merge_time: Duration::from_nanos(merge_ns),
            memory_longs,
            remote_needed_now,
            transfer_in_longs,
            paths_found,
            cycles_found,
            internal_cycles_merged,
            splice_pivot_lookups,
            splice_linked_splices,
            splice_materialization_longs,
        });
        post_memory.push(post_mem);
    }
    let n_out = c.u()? as usize;
    let mut outgoing = Vec::with_capacity(c.cap(n_out));
    for _ in 0..n_out {
        let to = c.u()? as u32;
        let len = c.u()? as usize;
        outgoing.push((to, c.take(len)?.to_vec()));
    }
    let n_frags = c.u()? as usize;
    let mut fragments = Vec::with_capacity(c.cap(n_frags));
    for _ in 0..n_frags {
        let id = c.u()?;
        let len = c.u()? as usize;
        fragments.push((id, c.take(len)?.to_vec()));
    }
    let transfer_longs = c.u()?;
    let checkpoint_longs = c.u()?;
    Ok(DoneMsg {
        superstep,
        reports,
        post_memory,
        outgoing,
        fragments,
        transfer_longs,
        checkpoint_longs,
    })
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// A worker's reason for refusing a Restore.
#[derive(Debug)]
struct RestoreRefusal {
    /// True when a checkpoint file was present but detected as unusable and
    /// ignored (vs simply missing / checkpointing disabled).
    ignored: bool,
}

/// The worker's live state between supersteps.
struct WorkerState {
    init: InitMsg,
    tree: Arc<MergeTree>,
    /// Active partition states, keyed by slot (= partition id).
    slots: BTreeMap<u32, WorkingPartition>,
    executor: Phase1Executor,
    kill_consumed: bool,
}

impl WorkerState {
    fn build(init: InitMsg) -> Result<Self, String> {
        let mut slots = BTreeMap::new();
        for words in &init.seeds {
            let wp = wire::decode(words);
            slots.insert(wp.id.0, wp);
        }
        let executor =
            Phase1Executor::new(init.par_mode).with_threads(init.phase1_threads);
        let tree = Arc::new(init.tree.clone());
        Ok(WorkerState { init, tree, slots, executor, kill_consumed: false })
    }

    /// Serialises the state entering `superstep` (plus the fragments found
    /// at `superstep - 1`) into checkpoint payload words.
    fn checkpoint_words(&self, fragments: &[(u64, Vec<u64>)]) -> Vec<u64> {
        let mut out = vec![self.slots.len() as u64];
        for wp in self.slots.values() {
            let words = wire::encode(wp);
            out.push(words.len() as u64);
            out.extend_from_slice(&words);
        }
        out.push(fragments.len() as u64);
        for (id, words) in fragments {
            out.push(*id);
            out.push(words.len() as u64);
            out.extend_from_slice(words);
        }
        out
    }

    /// Writes the checkpoint entering `superstep`. Returns Longs written
    /// (0 when checkpointing is off).
    fn write_ckpt(&self, superstep: u32, fragments: &[(u64, Vec<u64>)]) -> u64 {
        let Some(dir) = &self.init.checkpoint_dir else { return 0 };
        let path = checkpoint_file(dir, self.init.worker_id, superstep);
        write_checkpoint(&path, &self.checkpoint_words(fragments)).unwrap_or_default()
    }

    /// Restores the state entering `superstep` from this worker's
    /// checkpoint. A refusal says whether a file was present but unusable
    /// (torn write, foreign version, bad checksum) — i.e. *ignored* — as
    /// opposed to simply absent.
    fn restore(&mut self, superstep: u32) -> Result<u64, RestoreRefusal> {
        let Some(dir) = &self.init.checkpoint_dir else {
            return Err(RestoreRefusal { ignored: false });
        };
        let path = checkpoint_file(dir, self.init.worker_id, superstep);
        let words = match read_checkpoint(&path) {
            Ok(w) => w,
            Err(CheckpointError::Missing) => {
                return Err(RestoreRefusal { ignored: false })
            }
            Err(_) => return Err(RestoreRefusal { ignored: true }),
        };
        let decode = |words: &[u64]| -> Result<BTreeMap<u32, WorkingPartition>, String> {
            let mut c = Cursor::new(words);
            let n_slots = c.u()? as usize;
            let mut slots = BTreeMap::new();
            for _ in 0..n_slots {
                let len = c.u()? as usize;
                let wp = wire::decode(c.take(len)?);
                slots.insert(wp.id.0, wp);
            }
            // Validate (and drop) the fragment section: the coordinator
            // already holds every fragment committed at a barrier.
            let n_frags = c.u()? as usize;
            for _ in 0..n_frags {
                let id = c.u()?;
                let len = c.u()? as usize;
                let _ = decode_fragment(FragmentId(id), c.take(len)?);
            }
            Ok(slots)
        };
        match decode(&words) {
            Ok(slots) => {
                self.slots = slots;
                Ok(words.len() as u64)
            }
            Err(_) => Err(RestoreRefusal { ignored: true }),
        }
    }

    /// Runs one superstep: merge inbound child states, Phase 1 per owned
    /// slot (ascending), ship retiring states, checkpoint.
    fn superstep(&mut self, superstep: u32, inbox: Vec<Vec<u64>>) -> DoneMsg {
        let level = superstep;
        let tree = &self.tree;
        let strategy = self.init.strategy;
        let height = tree.height();

        // Decode inbound child states and order them exactly as the
        // in-process backend merges: by position in the previous level's
        // pair list.
        let prev_pairs: &[MergePair] =
            if level > 0 { tree.pairs_at(level - 1) } else { &[] };
        let mut inbound: Vec<WorkingPartition> =
            inbox.iter().map(|w| wire::decode(w)).collect();
        inbound.sort_by_key(|child| {
            prev_pairs.iter().position(|p| p.child == child.id).unwrap_or(usize::MAX)
        });

        let mut done = DoneMsg { superstep, ..Default::default() };
        let mut new_fragments: Vec<(u64, Vec<u64>)> = Vec::new();
        let slot_ids: Vec<u32> = self.slots.keys().copied().collect();
        for slot in slot_ids {
            let mut wp = self.slots.remove(&slot).expect("slot present");
            // --- Phase 2: merge child states addressed to this slot. -----
            let mut merge_time = Duration::ZERO;
            let mut transfer_in = 0u64;
            for child in inbound.iter().filter(|c| {
                prev_pairs.iter().any(|p| p.child == c.id && p.parent.0 == slot)
            }) {
                transfer_in +=
                    transfer_longs(child, tree, level.saturating_sub(1), strategy);
                let t0 = Instant::now();
                let (merged, _stats) =
                    merge_partitions(wp, child.clone(), tree, level.saturating_sub(1));
                merge_time += t0.elapsed();
                wp = merged;
            }

            // --- Phase 1 on a fresh scratch store. -----------------------
            let memory = active_memory_longs(&wp, tree, level, strategy);
            let needed_now = remote_needed_now(&wp, tree, level);
            let budget = if self.init.worker_threads > 0 {
                self.init.worker_threads
            } else {
                self.executor.resolved_threads()
            };
            let threads = match self.executor.mode() {
                Parallelism::PerPartition => 1,
                Parallelism::IntraPartition => budget,
                Parallelism::Auto => {
                    let merged_below: usize =
                        (0..level).map(|l| tree.pairs_at(l).len()).sum();
                    let live = tree.leaves.len() - merged_below;
                    if live < budget {
                        budget
                    } else {
                        1
                    }
                }
            };
            let scratch = FragmentStore::new();
            let t1 = Instant::now();
            let out = self.executor.run_with_threads(&mut wp, &scratch, threads);
            let phase1_time = t1.elapsed();

            // --- Remap scratch ids to provisional ids. -------------------
            // New fragments were pushed with dense scratch ids 0..n; give
            // them their (superstep, slot, seq) identity, and rewrite every
            // reference to them (their own edges splice in same-batch ids,
            // the partition's residual virtual edges point at them too).
            let mut rec = Vec::new();
            scratch.with_all(|frags| {
                for f in frags {
                    let mut f = f.clone();
                    f.id = remap(f.id, level, slot);
                    for e in &mut f.edges {
                        if let crate::fragment::TourEdge::Virtual { fragment, .. } = e {
                            *fragment = remap(*fragment, level, slot);
                        }
                    }
                    encode_fragment(&f, &mut rec);
                    new_fragments.push((f.id.0, rec.clone()));
                }
            });
            for e in &mut wp.local_edges {
                if let EdgeRef::Virtual(id) = &mut e.edge {
                    *id = remap(*id, level, slot);
                }
            }

            let post_memory = wp.memory_longs();
            done.reports.push(LevelPartitionReport {
                level,
                partition: wp.id,
                counts: out.counts_before,
                complexity: out.complexity,
                phase1_time,
                merge_time,
                memory_longs: memory,
                remote_needed_now: needed_now,
                transfer_in_longs: transfer_in,
                paths_found: out.path_map.num_paths() as u64,
                cycles_found: out.path_map.num_cycles() as u64,
                internal_cycles_merged: out.path_map.internal_cycles_merged,
                splice_pivot_lookups: out.splice.pivot_lookups,
                splice_linked_splices: out.splice.linked_splices,
                splice_materialization_longs: out.splice.materialization_longs,
            });
            done.post_memory.push(post_memory);

            // --- Ship to the merge parent if this slot retires here. -----
            let retires = if level < height {
                tree.pairs_at(level).iter().find(|p| p.child.0 == slot).map(|p| p.parent.0)
            } else {
                None
            };
            if let Some(parent) = retires {
                done.transfer_longs += transfer_longs(&wp, tree, level, strategy);
                done.outgoing.push((parent, wire::encode(&wp)));
                // Retired: the slot does not come back.
            } else {
                self.slots.insert(slot, wp);
            }
        }

        done.checkpoint_longs = self.write_ckpt(superstep + 1, &new_fragments);
        done.fragments = new_fragments;
        done
    }
}

/// Runs the worker protocol loop over an established connection. Returns
/// when told to shut down, or exits early on an injected kill / protocol
/// failure (the coordinator sees the connection drop and recovers).
pub(crate) fn run_worker(conn: Arc<dyn Connection>, worker_id: u32) -> Result<(), String> {
    conn.send(kind::HELLO, &words_to_bytes(&[worker_id as u64]))
        .map_err(|e| format!("hello failed: {e}"))?;

    let mut state: Option<WorkerState> = None;
    // Heartbeats flow only while a superstep is being computed; an idle
    // worker is silent, so a worker that never received its Start (dropped
    // frame) is indistinguishable from a dead one — by design, the
    // coordinator's timeout recovers both the same way.
    let busy = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let mut heartbeat: Option<std::thread::JoinHandle<()>> = None;

    let result = loop {
        let (k, payload) = match conn.recv_timeout(None) {
            Ok(f) => f,
            Err(FrameError::Closed) => break Ok(()),
            Err(e) => break Err(format!("worker recv failed: {e}")),
        };
        let words = bytes_to_words(&payload)?;
        match k {
            kind::INIT => {
                let init = decode_init(&words)?;
                if heartbeat.is_none() {
                    let interval = init.heartbeat_interval;
                    let conn2 = Arc::clone(&conn);
                    let busy2 = Arc::clone(&busy);
                    let stop2 = Arc::clone(&stop);
                    heartbeat = Some(std::thread::spawn(move || loop {
                        std::thread::sleep(interval);
                        if stop2.load(Ordering::Relaxed) {
                            return;
                        }
                        if busy2.load(Ordering::Relaxed)
                            && conn2.send(kind::HEARTBEAT, &[]).is_err()
                        {
                            return;
                        }
                    }));
                }
                let st = WorkerState::build(init)?;
                let ckpt0 = st.write_ckpt(0, &[]);
                state = Some(st);
                conn.send(kind::READY, &words_to_bytes(&[ckpt0]))
                    .map_err(|e| format!("ready failed: {e}"))?;
            }
            kind::START => {
                let st = state.as_mut().ok_or("Start before Init")?;
                let (superstep, inbox) = decode_start(&words)?;
                busy.store(true, Ordering::Relaxed);
                if let Some((kw, ks)) = st.init.kill {
                    if kw == st.init.worker_id && ks == superstep && !st.kill_consumed {
                        st.kill_consumed = true;
                        match st.init.kill_mode {
                            // Thread workers can't be SIGKILLed individually:
                            // dying is dropping the connection mid-superstep.
                            KillMode::Exit => break Ok(()),
                            // Process workers stall so the coordinator's
                            // SIGKILL lands mid-superstep, before any Done.
                            KillMode::Stall => {
                                std::thread::sleep(Duration::from_millis(600))
                            }
                        }
                    }
                }
                let done = st.superstep(superstep, inbox);
                let send = conn.send(kind::DONE, &words_to_bytes(&encode_done(&done)));
                busy.store(false, Ordering::Relaxed);
                send.map_err(|e| format!("done failed: {e}"))?;
            }
            kind::RESTORE => {
                let st = state.as_mut().ok_or("Restore before Init")?;
                let mut c = Cursor::new(&words);
                let superstep = c.u()? as u32;
                match st.restore(superstep) {
                    Ok(longs) => conn
                        .send(
                            kind::RESTORE_ACK,
                            &words_to_bytes(&[superstep as u64, longs]),
                        )
                        .map_err(|e| format!("restore ack failed: {e}"))?,
                    Err(refusal) => {
                        conn.send(
                            kind::RESTORE_FAILED,
                            &words_to_bytes(&[
                                superstep as u64,
                                u64::from(refusal.ignored),
                            ]),
                        )
                        .map_err(|e| format!("restore nack failed: {e}"))?;
                    }
                }
            }
            kind::SHUTDOWN => {
                conn.send(kind::BYE, &[]).ok();
                break Ok(());
            }
            other => break Err(format!("unexpected frame kind {other} at worker")),
        }
    };
    stop.store(true, Ordering::Relaxed);
    if let Some(h) = heartbeat {
        h.join().ok();
    }
    result
}

/// Entry point of the `euler-worker` binary: connect to the coordinator
/// `endpoint` (scheme-prefixed: `tcp:…`, `unix:…`) and serve as worker
/// `worker_id` until shut down.
pub fn worker_main(endpoint: &str, worker_id: u32) -> Result<(), String> {
    let conn = connect_endpoint(endpoint, 50, Duration::from_millis(10))
        .map_err(|e| format!("worker {worker_id} could not connect to {endpoint}: {e}"))?;
    run_worker(Arc::from(conn), worker_id)
}

/// Resolves the worker binary to spawn for process workers:
/// `$EULER_WORKER_BIN` if set, else an `euler-worker` next to (or one
/// directory above) the current executable — which covers both installed
/// layouts and cargo's `target/debug/deps/` test binaries.
pub fn default_worker_bin() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("EULER_WORKER_BIN") {
        return Some(PathBuf::from(p));
    }
    let exe = std::env::current_exe().ok()?;
    let dir = exe.parent()?;
    [dir.join("euler-worker"), dir.parent()?.join("euler-worker")]
        .into_iter()
        .find(|cand| cand.is_file())
}

// ---------------------------------------------------------------------------
// Coordinator side.
// ---------------------------------------------------------------------------

/// How the coordinator brings workers into existence.
#[derive(Clone, Debug)]
pub(crate) enum WorkerSpawn {
    /// Worker threads in this process (any transport).
    Threads,
    /// Worker *processes* running the given binary (socket transports only).
    Processes { worker_bin: PathBuf },
}

/// Static configuration of a distributed run.
pub(crate) struct DistConfig {
    pub transport: Arc<dyn Transport>,
    pub spawn: WorkerSpawn,
    pub num_workers: usize,
    pub checkpoint_dir: Option<PathBuf>,
    pub policy: FaultPolicy,
    pub plan: FaultPlan,
    pub par_mode: Parallelism,
    pub phase1_threads: usize,
    pub worker_threads: usize,
}

enum Event {
    Frame { worker: u32, epoch: u64, kind: u16, payload: Vec<u8> },
    Dead { worker: u32, epoch: u64 },
}

struct WorkerHandle {
    conn: Arc<dyn Connection>,
    child: Option<std::process::Child>,
    epoch: u64,
    restarts: u32,
    last_heard: Instant,
    stop_rx: Arc<AtomicBool>,
    recv_handle: Option<std::thread::JoinHandle<()>>,
}

/// The coordinator of one distributed run: spawns workers, drives one
/// barrier per merge level, detects deaths, and recovers.
pub(crate) struct DistRun {
    cfg: DistConfig,
    tree: Arc<MergeTree>,
    strategy: MergeStrategy,
    /// Wire-encoded level-0 seeds per worker, retained for re-Init.
    seeds_by_worker: Vec<Vec<Vec<u64>>>,
    listener: Box<dyn Listener>,
    workers: Vec<WorkerHandle>,
    events_tx: mpsc::Sender<Event>,
    events_rx: mpsc::Receiver<Event>,
    /// Current superstep's Start payloads per worker, retained until the
    /// barrier commits so they can be re-delivered after a rollback.
    inbox: Vec<Vec<Vec<u64>>>,
    /// Fragments committed per superstep (barrier-complete only).
    committed_frags: BTreeMap<u32, Vec<(u64, Vec<u64>)>>,
    /// Dones collected by the in-flight barrier (filled by `wait_barrier`,
    /// consumed by `run_superstep`).
    pending_dones: Vec<(u32, DoneMsg)>,
    superstep_stats: Vec<SuperstepStats>,
    recovery: RecoveryStats,
    warnings: Vec<String>,
    kill_consumed: bool,
    start_seq: u64,
    t_start: Instant,
    total_wall: Duration,
    finished: bool,
}

impl DistRun {
    /// Spawns and initialises the worker fleet over the level-0 seed.
    pub fn new(
        cfg: DistConfig,
        tree: Arc<MergeTree>,
        strategy: MergeStrategy,
        seed: &[WorkingPartition],
    ) -> Result<Self, EulerError> {
        let t_start = Instant::now();
        let num_workers = cfg.num_workers;
        let mut seeds_by_worker: Vec<Vec<Vec<u64>>> = vec![Vec::new(); num_workers];
        for wp in seed {
            seeds_by_worker[owner(wp.id.0, num_workers)].push(wire::encode(wp));
        }
        let listener = cfg
            .transport
            .listen()
            .map_err(|e| EulerError::Distributed(format!("listen failed: {e}")))?;
        let (events_tx, events_rx) = mpsc::channel();
        let mut run = DistRun {
            tree,
            strategy,
            seeds_by_worker,
            listener,
            workers: Vec::new(),
            events_tx,
            events_rx,
            inbox: vec![Vec::new(); num_workers],
            committed_frags: BTreeMap::new(),
            pending_dones: Vec::new(),
            superstep_stats: Vec::new(),
            recovery: RecoveryStats::default(),
            warnings: Vec::new(),
            kill_consumed: false,
            start_seq: 0,
            t_start,
            total_wall: Duration::ZERO,
            finished: false,
            cfg,
        };
        for w in 0..num_workers as u32 {
            run.spawn_worker(w)?;
            run.init_worker(w)?;
            run.start_receiver(w);
        }
        Ok(run)
    }

    /// Runs one merge level to completion (recovering as needed) and
    /// returns its outcome.
    pub fn step(&mut self, level: u32) -> Result<LevelOutcome, EulerError> {
        self.run_superstep(level, true)
            .map(|o| o.expect("recorded superstep returns an outcome"))
    }

    /// Moves every committed fragment into `store` in deterministic order:
    /// sorted by provisional id (= the sequential push order), densely
    /// renumbered, every virtual reference rewritten.
    pub fn flush_fragments(&mut self, store: &FragmentStore) -> Result<(), EulerError> {
        let mut all: Vec<(u64, Vec<u64>)> =
            std::mem::take(&mut self.committed_frags).into_values().flatten().collect();
        all.sort_by_key(|(id, _)| *id);
        let dense: HashMap<u64, u64> =
            all.iter().enumerate().map(|(i, (id, _))| (*id, i as u64)).collect();
        for (i, (id, words)) in all.iter().enumerate() {
            let mut f: Fragment = decode_fragment(FragmentId(i as u64), words);
            for e in &mut f.edges {
                if let crate::fragment::TourEdge::Virtual { fragment, .. } = e {
                    *fragment = FragmentId(*dense.get(&fragment.0).ok_or_else(|| {
                        EulerError::Distributed(format!(
                            "fragment {id:#x} references unknown fragment {:#x}",
                            fragment.0
                        ))
                    })?);
                }
            }
            let assigned = store.push(f);
            debug_assert_eq!(assigned.0, i as u64);
        }
        Ok(())
    }

    /// Shuts the fleet down (Shutdown/Bye), reaps workers, removes the
    /// checkpoint directory of a cleanly completed run.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        for h in &self.workers {
            h.conn.send(kind::SHUTDOWN, &[]).ok();
        }
        // Best-effort Bye drain so sockets flush before teardown.
        let deadline = Instant::now() + Duration::from_millis(500);
        let mut byes = 0;
        while byes < self.workers.len() && Instant::now() < deadline {
            match self.events_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Event::Frame { kind: kind::BYE, .. }) => byes += 1,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        for h in &mut self.workers {
            h.stop_rx.store(true, Ordering::Relaxed);
            if let Some(mut child) = h.child.take() {
                child.kill().ok();
                child.wait().ok();
            }
            if let Some(recv) = h.recv_handle.take() {
                recv.join().ok();
            }
        }
        if let Some(dir) = &self.cfg.checkpoint_dir {
            std::fs::remove_dir_all(dir).ok();
        }
        self.total_wall = self.t_start.elapsed();
    }

    /// Engine-statistics view of the run so far.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            supersteps: self.superstep_stats.clone(),
            num_workers: self.cfg.num_workers,
            total_wall_time: if self.finished { self.total_wall } else { self.t_start.elapsed() },
            modelled_platform_overhead: Duration::ZERO,
            recovery: self.recovery,
        }
    }

    /// Human-readable recovery notes for `RunReport::warnings`.
    pub fn warnings(&self) -> Vec<String> {
        self.warnings.clone()
    }

    // -- internals ----------------------------------------------------------

    fn spawn_worker(&mut self, w: u32) -> Result<(), EulerError> {
        let endpoint = self.listener.endpoint();
        let child = match &self.cfg.spawn {
            WorkerSpawn::Threads => {
                let attempts = self.cfg.policy.connect_attempts;
                let backoff = self.cfg.policy.connect_backoff;
                let transport = Arc::clone(&self.cfg.transport);
                std::thread::spawn(move || {
                    let conn = match euler_bsp::transport::connect_with_retry(
                        transport.as_ref(),
                        &endpoint,
                        attempts,
                        backoff,
                    ) {
                        Ok(c) => c,
                        Err(_) => return,
                    };
                    // A worker death (injected or real) is just this thread
                    // returning; the coordinator recovers from the dropped
                    // connection, so the error itself needs no channel.
                    run_worker(Arc::from(conn), w).ok();
                });
                None
            }
            WorkerSpawn::Processes { worker_bin } => Some(
                std::process::Command::new(worker_bin)
                    .arg("--endpoint")
                    .arg(&endpoint)
                    .arg("--worker-id")
                    .arg(w.to_string())
                    .stdout(std::process::Stdio::null())
                    .spawn()
                    .map_err(|e| {
                        EulerError::Distributed(format!(
                            "spawning worker process {} failed: {e}",
                            worker_bin.display()
                        ))
                    })?,
            ),
        };
        // Accept until the expected worker's Hello arrives (spawn order and
        // connect order may differ when several workers start at once).
        let deadline = Instant::now() + Duration::from_secs(30);
        let conn: Arc<dyn Connection> = loop {
            if Instant::now() > deadline {
                return Err(EulerError::Distributed(format!(
                    "worker {w} never connected"
                )));
            }
            let conn = self
                .listener
                .accept(Duration::from_secs(30))
                .map_err(|e| EulerError::Distributed(format!("accept failed: {e}")))?;
            let (k, payload) = conn
                .recv_timeout(Some(Duration::from_secs(10)))
                .map_err(|e| EulerError::Distributed(format!("handshake failed: {e}")))?;
            let words = bytes_to_words(&payload).map_err(EulerError::Distributed)?;
            if k == kind::HELLO && words.first() == Some(&(w as u64)) {
                // A stalled worker must not block a coordinator send past the
                // fault deadlines: bound every send by the heartbeat timeout
                // so a full socket buffer surfaces as FrameError::Timeout and
                // flows into the existing send-retry / dead-worker path.
                conn.set_send_timeout(Some(self.cfg.policy.heartbeat_timeout));
                break Arc::from(conn);
            }
            // A Hello from some other (late, stale) worker: drop it; its
            // connection closing sends it back through spawn recovery.
        };
        let handle = WorkerHandle {
            conn,
            child,
            epoch: 0,
            restarts: 0,
            last_heard: Instant::now(),
            stop_rx: Arc::new(AtomicBool::new(false)),
            recv_handle: None,
        };
        if let Some(existing) = self.workers.get_mut(w as usize) {
            let old = std::mem::replace(existing, handle);
            existing.epoch = old.epoch + 1;
            existing.restarts = old.restarts;
            // Old receiver thread and connection wind down via stop flag.
        } else {
            debug_assert_eq!(self.workers.len(), w as usize);
            self.workers.push(handle);
        }
        Ok(())
    }

    /// Sends Init (with this worker's retained seeds) and waits for Ready.
    /// The injected kill plan is delivered only while unconsumed.
    fn init_worker(&mut self, w: u32) -> Result<(), EulerError> {
        let kill = self.cfg.plan.kill.filter(|_| !self.kill_consumed);
        let init = InitMsg {
            worker_id: w,
            num_workers: self.cfg.num_workers as u32,
            strategy: self.strategy,
            par_mode: self.cfg.par_mode,
            phase1_threads: self.cfg.phase1_threads,
            worker_threads: self.cfg.worker_threads,
            heartbeat_interval: self.cfg.policy.heartbeat_interval,
            kill,
            kill_mode: match self.cfg.spawn {
                WorkerSpawn::Threads => KillMode::Exit,
                WorkerSpawn::Processes { .. } => KillMode::Stall,
            },
            checkpoint_dir: self.cfg.checkpoint_dir.clone(),
            tree: self.tree.as_ref().clone(),
            seeds: self.seeds_by_worker[w as usize].clone(),
        };
        let conn = Arc::clone(&self.workers[w as usize].conn);
        conn.send(kind::INIT, &words_to_bytes(&encode_init(&init)))
            .map_err(|e| EulerError::Distributed(format!("init of worker {w} failed: {e}")))?;
        let (k, payload) = conn
            .recv_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| EulerError::Distributed(format!("worker {w} not ready: {e}")))?;
        if k != kind::READY {
            return Err(EulerError::Distributed(format!(
                "worker {w} answered Init with frame kind {k}"
            )));
        }
        let words = bytes_to_words(&payload).map_err(EulerError::Distributed)?;
        let ckpt0 = words.first().copied().unwrap_or(0);
        if ckpt0 > 0 {
            self.recovery.checkpoints_written += 1;
            self.recovery.checkpoint_longs_written += ckpt0;
        }
        Ok(())
    }

    fn start_receiver(&mut self, w: u32) {
        let h = &self.workers[w as usize];
        let conn = Arc::clone(&h.conn);
        let stop = Arc::clone(&h.stop_rx);
        let epoch = h.epoch;
        let tx = self.events_tx.clone();
        let handle = std::thread::spawn(move || loop {
            if stop.load(Ordering::Relaxed) {
                return;
            }
            match conn.recv_timeout(Some(Duration::from_millis(100))) {
                Ok((kind, payload)) => {
                    if tx.send(Event::Frame { worker: w, epoch, kind, payload }).is_err() {
                        return;
                    }
                }
                Err(FrameError::Timeout) => continue,
                Err(_) => {
                    tx.send(Event::Dead { worker: w, epoch }).ok();
                    return;
                }
            }
        });
        self.workers[w as usize].recv_handle = Some(handle);
    }

    /// Coordinator→worker send with bounded retry, plus the scripted
    /// drop/delay injection (counted over Start frames).
    fn send_start(&mut self, w: u32, payload: &[u8]) -> Result<(), FrameError> {
        let seq = self.start_seq;
        self.start_seq += 1;
        if self.cfg.plan.drop_nth_send == Some(seq) {
            return Ok(()); // injected loss: pretend it went out
        }
        if let Some((n, d)) = self.cfg.plan.delay_nth_send {
            if n == seq {
                std::thread::sleep(d);
            }
        }
        let conn = Arc::clone(&self.workers[w as usize].conn);
        let mut last = FrameError::Closed;
        for attempt in 0..=self.cfg.policy.send_retries {
            match conn.send(kind::START, payload) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    last = e;
                    if attempt < self.cfg.policy.send_retries {
                        self.recovery.send_retries += 1;
                        std::thread::sleep(Duration::from_millis(5 << attempt));
                    }
                }
            }
        }
        Err(last)
    }

    /// Drives superstep `level` to a committed barrier. `record` is false
    /// during full-restart replay (the walk already consumed those levels).
    fn run_superstep(
        &mut self,
        level: u32,
        record: bool,
    ) -> Result<Option<LevelOutcome>, EulerError> {
        loop {
            let t_level = Instant::now();
            let mut deaths: Vec<u32> = Vec::new();
            for w in 0..self.cfg.num_workers as u32 {
                let payload = words_to_bytes(&encode_start(level, &self.inbox[w as usize]));
                self.workers[w as usize].last_heard = Instant::now();
                if self.send_start(w, &payload).is_err() {
                    deaths.push(w);
                }
            }
            // Injected SIGKILL for process workers: the target stalls at
            // this superstep; kill it for real, mid-superstep.
            if let (Some((kw, ks)), WorkerSpawn::Processes { .. }, false) =
                (self.cfg.plan.kill, &self.cfg.spawn, self.kill_consumed)
            {
                if ks == level {
                    std::thread::sleep(Duration::from_millis(150));
                    if let Some(child) = &mut self.workers[kw as usize].child {
                        child.kill().ok();
                    }
                }
            }
            if deaths.is_empty() {
                deaths = self.wait_barrier(level)?.err().unwrap_or_default();
                if deaths.is_empty() {
                    // Barrier complete: re-collect the Done set (stored by
                    // wait_barrier) and commit.
                    let dones = std::mem::take(&mut self.pending_dones);
                    return Ok(self.commit(level, dones, record, t_level.elapsed()));
                }
            }
            self.recover(level, &deaths)?;
        }
    }

    /// Waits until every worker answered Done for `level` or died.
    /// `Ok(Ok(()))` leaves the Done set in `pending_dones`; `Ok(Err(dead))`
    /// lists the deceased.
    fn wait_barrier(&mut self, level: u32) -> Result<Result<(), Vec<u32>>, EulerError> {
        let mut pending: Vec<bool> = vec![true; self.cfg.num_workers];
        let mut deaths: Vec<u32> = Vec::new();
        self.pending_dones.clear();
        while pending.iter().any(|&p| p) {
            match self.events_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(Event::Frame { worker, epoch, kind: k, payload }) => {
                    if self.workers[worker as usize].epoch != epoch {
                        continue; // stale connection
                    }
                    self.workers[worker as usize].last_heard = Instant::now();
                    match k {
                        kind::DONE => {
                            let words =
                                bytes_to_words(&payload).map_err(EulerError::Distributed)?;
                            let done = decode_done(&words).map_err(EulerError::Distributed)?;
                            if done.superstep == level && pending[worker as usize] {
                                pending[worker as usize] = false;
                                self.pending_dones.push((worker, done));
                            }
                        }
                        kind::HEARTBEAT | kind::BYE | kind::RESTORE_ACK
                        | kind::RESTORE_FAILED | kind::READY => {}
                        other => {
                            return Err(EulerError::Distributed(format!(
                                "unexpected frame kind {other} from worker {worker}"
                            )))
                        }
                    }
                }
                Ok(Event::Dead { worker, epoch }) => {
                    if self.workers[worker as usize].epoch == epoch
                        && pending[worker as usize]
                    {
                        pending[worker as usize] = false;
                        deaths.push(worker);
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(EulerError::Distributed(
                        "coordinator event channel closed".into(),
                    ))
                }
            }
            // Heartbeat deadline sweep over still-pending workers.
            let timeout = self.cfg.policy.heartbeat_timeout;
            for (w, still_pending) in pending.iter_mut().enumerate() {
                if *still_pending && self.workers[w].last_heard.elapsed() > timeout {
                    *still_pending = false;
                    deaths.push(w as u32);
                    self.recovery.heartbeat_misses += 1;
                    self.warnings.push(format!(
                        "worker {w} missed heartbeats for {timeout:?} at superstep {level}; declared dead"
                    ));
                    // Tear the connection down so a stuck-but-alive worker
                    // (or its receiver thread) cannot haunt the new epoch.
                    self.workers[w].stop_rx.store(true, Ordering::Relaxed);
                    if let Some(child) = &mut self.workers[w].child {
                        child.kill().ok();
                    }
                }
            }
        }
        Ok(if deaths.is_empty() { Ok(()) } else { Err(deaths) })
    }

    /// Commits a completed barrier: routes shipped states into the next
    /// superstep's inboxes, stores fragments, accounts stats, and (when
    /// `record`) assembles the level outcome.
    fn commit(
        &mut self,
        level: u32,
        mut dones: Vec<(u32, DoneMsg)>,
        record: bool,
        wall: Duration,
    ) -> Option<LevelOutcome> {
        dones.sort_by_key(|(w, _)| *w);
        let mut stats = SuperstepStats::new(level);
        stats.wall_time = wall;
        let mut next_inbox: Vec<Vec<Vec<u64>>> = vec![Vec::new(); self.cfg.num_workers];
        let mut frags: Vec<(u64, Vec<u64>)> = Vec::new();
        let mut outcome = LevelOutcome::default();
        for (w, done) in &mut dones {
            for (to, words) in std::mem::take(&mut done.outgoing) {
                let dst = owner(to, self.cfg.num_workers);
                let bytes = 8 * words.len() as u64;
                if dst == *w as usize {
                    stats.local_messages += 1;
                    stats.local_bytes += bytes;
                } else {
                    stats.remote_messages += 1;
                    stats.remote_bytes += bytes;
                }
                next_inbox[dst].push(words);
            }
            frags.append(&mut done.fragments);
            if done.checkpoint_longs > 0 {
                self.recovery.checkpoints_written += 1;
                self.recovery.checkpoint_longs_written += done.checkpoint_longs;
            }
            for (r, post) in done.reports.iter().zip(&done.post_memory) {
                stats.compute_time += r.phase1_time + r.merge_time;
                let mut bd = TimeBreakdown::new();
                bd.add("phase1_tour", r.phase1_time);
                bd.add("create_partition_object", r.merge_time);
                stats.per_partition_compute.push((r.partition.0, bd));
                stats.memory.record(format!("P{}", r.partition.0), *post);
            }
            outcome.transfer_longs += done.transfer_longs;
            outcome.reports.append(&mut done.reports);
        }
        outcome.reports.sort_by_key(|r| r.partition);
        stats.active_partitions = outcome.reports.len();
        stats.per_partition_compute.sort_by_key(|(p, _)| *p);
        self.committed_frags.insert(level, frags);
        self.inbox = next_inbox;
        if record {
            self.superstep_stats.push(stats);
            Some(outcome)
        } else {
            None
        }
    }

    /// Recovers from worker deaths detected during `level`: rollback +
    /// respawn + restore when checkpoints exist, full deterministic replay
    /// otherwise.
    fn recover(&mut self, level: u32, deaths: &[u32]) -> Result<(), EulerError> {
        for &w in deaths {
            let h = &mut self.workers[w as usize];
            h.restarts += 1;
            if h.restarts > self.cfg.policy.max_worker_restarts {
                return Err(EulerError::Distributed(format!(
                    "worker {w} exceeded the restart budget ({}) at superstep {level}",
                    self.cfg.policy.max_worker_restarts
                )));
            }
            h.stop_rx.store(true, Ordering::Relaxed);
            if let Some(mut child) = h.child.take() {
                child.kill().ok();
                child.wait().ok();
            }
            self.recovery.restarts += 1;
        }
        if self.cfg.plan.kill.is_some_and(|(_, ks)| ks == level) {
            self.kill_consumed = true;
        }
        if self.cfg.checkpoint_dir.is_some() {
            self.warnings.push(format!(
                "worker(s) {deaths:?} died at superstep {level}; rolling back to checkpoint {level} and respawning"
            ));
            if self.try_rollback_restore(level, deaths)? {
                return Ok(());
            }
            self.warnings
                .push(format!("checkpoint restore for superstep {level} failed; replaying the run from the seed"));
        } else {
            self.warnings.push(format!(
                "worker(s) {deaths:?} died at superstep {level} with checkpointing disabled; replaying the run from the seed"
            ));
        }
        self.full_restart(level, deaths)
    }

    /// Rollback path: survivors reload checkpoint `level`, the dead are
    /// respawned and restored from the same checkpoint. Returns false if
    /// any restore was refused (missing/torn/foreign checkpoint).
    fn try_rollback_restore(
        &mut self,
        level: u32,
        deaths: &[u32],
    ) -> Result<bool, EulerError> {
        let mut ok = true;
        // Survivors first: they are idle after the broken barrier.
        for w in 0..self.cfg.num_workers as u32 {
            if deaths.contains(&w) {
                continue;
            }
            let conn = Arc::clone(&self.workers[w as usize].conn);
            if conn.send(kind::RESTORE, &words_to_bytes(&[level as u64])).is_err() {
                ok = false;
                continue;
            }
            ok &= self.await_restore_ack(w, level)?;
        }
        for &w in deaths {
            self.spawn_worker(w)?;
            self.init_worker(w)?;
            let conn = Arc::clone(&self.workers[w as usize].conn);
            if conn.send(kind::RESTORE, &words_to_bytes(&[level as u64])).is_err() {
                ok = false;
            } else {
                ok &= self.await_restore_ack_direct(w, level)?;
            }
            self.start_receiver(w);
        }
        Ok(ok)
    }

    /// Restore acknowledgement for a worker whose receiver thread is live
    /// (survivors): consumed through the event channel.
    fn await_restore_ack(&mut self, w: u32, level: u32) -> Result<bool, EulerError> {
        let deadline = Instant::now() + self.cfg.policy.heartbeat_timeout;
        while Instant::now() < deadline {
            match self.events_rx.recv_timeout(Duration::from_millis(25)) {
                Ok(Event::Frame { worker, epoch, kind: k, payload })
                    if worker == w && self.workers[w as usize].epoch == epoch =>
                {
                    match k {
                        kind::RESTORE_ACK => {
                            let words =
                                bytes_to_words(&payload).map_err(EulerError::Distributed)?;
                            if words.first() == Some(&(level as u64)) {
                                self.recovery.checkpoint_longs_restored +=
                                    words.get(1).copied().unwrap_or(0);
                                return Ok(true);
                            }
                        }
                        kind::RESTORE_FAILED => {
                            let words =
                                bytes_to_words(&payload).map_err(EulerError::Distributed)?;
                            self.recovery.checkpoints_ignored +=
                                words.get(1).copied().unwrap_or(0);
                            return Ok(false);
                        }
                        _ => {} // stale Done/heartbeat from the broken barrier
                    }
                }
                Ok(Event::Dead { worker, epoch })
                    if worker == w && self.workers[w as usize].epoch == epoch =>
                {
                    return Ok(false)
                }
                Ok(_) => {}
                Err(mpsc::RecvTimeoutError::Timeout) => {}
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(EulerError::Distributed(
                        "coordinator event channel closed".into(),
                    ))
                }
            }
        }
        Ok(false)
    }

    /// Restore acknowledgement read directly off a fresh connection (the
    /// respawned worker's receiver thread starts only afterwards).
    fn await_restore_ack_direct(&mut self, w: u32, level: u32) -> Result<bool, EulerError> {
        let conn = Arc::clone(&self.workers[w as usize].conn);
        match conn.recv_timeout(Some(self.cfg.policy.heartbeat_timeout)) {
            Ok((kind::RESTORE_ACK, payload)) => {
                let words = bytes_to_words(&payload).map_err(EulerError::Distributed)?;
                if words.first() == Some(&(level as u64)) {
                    self.recovery.checkpoint_longs_restored +=
                        words.get(1).copied().unwrap_or(0);
                    return Ok(true);
                }
                Ok(false)
            }
            Ok((kind::RESTORE_FAILED, payload)) => {
                let words = bytes_to_words(&payload).map_err(EulerError::Distributed)?;
                self.recovery.checkpoints_ignored += words.get(1).copied().unwrap_or(0);
                Ok(false)
            }
            _ => Ok(false),
        }
    }

    /// Full-restart path: the dead are respawned fresh, survivors are
    /// re-initialised in place, and supersteps `0..level` replay
    /// deterministically with their outcomes suppressed (the walk already
    /// consumed them).
    fn full_restart(&mut self, level: u32, deaths: &[u32]) -> Result<(), EulerError> {
        self.recovery.full_restarts += 1;
        for &w in deaths {
            self.spawn_worker(w)?;
            self.init_worker(w)?;
            self.start_receiver(w);
        }
        for w in 0..self.cfg.num_workers as u32 {
            if deaths.contains(&w) {
                continue;
            }
            // Restart the receiver under a new epoch so frames of the
            // abandoned barrier cannot leak into the replay. The old
            // receiver is *joined* (it exits within one poll interval)
            // before re-Init, so it cannot steal the Ready frame off the
            // still-shared connection.
            let h = &mut self.workers[w as usize];
            h.stop_rx.store(true, Ordering::Relaxed);
            if let Some(recv) = h.recv_handle.take() {
                recv.join().ok();
            }
            h.epoch += 1;
            h.stop_rx = Arc::new(AtomicBool::new(false));
            self.init_worker(w)?;
            self.start_receiver(w);
        }
        self.inbox = vec![Vec::new(); self.cfg.num_workers];
        for ss in 0..level {
            self.run_superstep(ss, false)?;
        }
        Ok(())
    }
}

impl Drop for DistRun {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Owner worker of a partition slot: round-robin by partition id.
fn owner(slot: u32, num_workers: usize) -> usize {
    (slot as usize) % num_workers.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny_tree() -> MergeTree {
        MergeTree {
            levels: vec![vec![MergePair {
                parent: PartitionId(0),
                child: PartitionId(1),
                weight: 3,
            }]],
            root: PartitionId(0),
            leaves: vec![PartitionId(0), PartitionId(1)],
        }
    }

    fn test_init(dir: Option<PathBuf>) -> InitMsg {
        InitMsg {
            worker_id: 0,
            num_workers: 1,
            strategy: MergeStrategy::Deferred,
            par_mode: Parallelism::PerPartition,
            phase1_threads: 1,
            worker_threads: 0,
            heartbeat_interval: Duration::from_millis(50),
            kill: None,
            kill_mode: KillMode::Exit,
            checkpoint_dir: dir,
            tree: tiny_tree(),
            seeds: Vec::new(),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("euler-dist-hygiene-{}-{}", tag, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn init_message_roundtrips() {
        let dir = Some(PathBuf::from("/tmp/ckpts"));
        let mut m = test_init(dir.clone());
        m.kill = Some((3, 2));
        m.seeds = vec![vec![1, 2, 3], vec![], vec![u64::MAX]];
        let got = decode_init(&encode_init(&m)).unwrap();
        assert_eq!(got.worker_id, m.worker_id);
        assert_eq!(got.kill, m.kill);
        assert_eq!(got.checkpoint_dir, dir);
        assert_eq!(got.seeds, m.seeds);
        assert_eq!(got.tree.leaves, m.tree.leaves);
        assert_eq!(got.tree.levels, m.tree.levels);
    }

    #[test]
    fn missing_checkpoint_refusal_is_not_ignored() {
        // Checkpointing disabled → refusal without "ignored" (nothing was
        // found and discarded); same for an enabled dir with no file yet.
        let mut s = WorkerState::build(test_init(None)).unwrap();
        assert!(!s.restore(0).unwrap_err().ignored);
        let dir = scratch("missing");
        let mut s = WorkerState::build(test_init(Some(dir.clone()))).unwrap();
        assert!(!s.restore(0).unwrap_err().ignored);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_checkpoint_is_detected_and_ignored_at_restore() {
        let dir = scratch("torn");
        let mut s = WorkerState::build(test_init(Some(dir.clone()))).unwrap();
        assert!(s.write_ckpt(0, &[]) > 0);
        assert!(s.restore(0).is_ok(), "pristine checkpoint must restore");
        // Tear the file mid-payload, as a crash during a (non-atomic) write
        // or a truncated copy would.
        let path = checkpoint_file(&dir, 0, 0);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(s.restore(0).unwrap_err().ignored);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn foreign_version_checkpoint_is_detected_and_ignored_at_restore() {
        let dir = scratch("version");
        let mut s = WorkerState::build(test_init(Some(dir.clone()))).unwrap();
        assert!(s.write_ckpt(1, &[]) > 0);
        // Word 1 of the container is the format version; stamp a future one.
        let path = checkpoint_file(&dir, 0, 1);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(s.restore(1).unwrap_err().ignored);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupted_checkpoint_payload_is_detected_and_ignored_at_restore() {
        let dir = scratch("corrupt");
        let mut s = WorkerState::build(test_init(Some(dir.clone()))).unwrap();
        assert!(s.write_ckpt(2, &[]) > 0);
        let path = checkpoint_file(&dir, 0, 2);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(s.restore(2).unwrap_err().ignored);
        std::fs::remove_dir_all(dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Start messages round-trip for any superstep and payload set.
        #[test]
        fn start_message_roundtrips(
            superstep in 0u64..1000,
            msgs in prop::collection::vec(prop::collection::vec(0u64..1_000_000, 0..12), 0..6),
        ) {
            let words = encode_start(superstep as u32, &msgs);
            let (ss, got) = decode_start(&words).unwrap();
            prop_assert_eq!(ss, superstep as u32);
            prop_assert_eq!(got, msgs);
        }

        /// Decoding random garbage words returns a typed error or a
        /// harmless value — never a panic, never an unbounded allocation.
        #[test]
        fn protocol_decoders_never_panic_on_garbage(
            words in prop::collection::vec(0u64..u64::MAX, 0..40),
        ) {
            let _ = decode_init(&words);
            let _ = decode_start(&words);
            let _ = decode_done(&words);
        }
    }
}
