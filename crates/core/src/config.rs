//! Algorithm configuration.

use crate::merge_strategy::MergeStrategy;
use serde::{Deserialize, Serialize};

/// Configuration of the partition-centric Euler circuit algorithm.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct EulerConfig {
    /// Strategy for handling remote edges across merge levels (§5).
    pub merge_strategy: MergeStrategy,
    /// Run Phase 1 of the partitions at one level in parallel (rayon). The
    /// paper's partitions execute concurrently on different machines; turning
    /// this off makes runs easier to profile per partition.
    pub parallel_within_level: bool,
    /// Verify the reconstructed circuit against the input graph before
    /// returning (every edge exactly once, chained, closed).
    pub verify: bool,
    /// Reject inputs that are not Eulerian instead of producing per-component
    /// open results. The paper assumes Eulerian inputs; tests exercise both.
    pub require_eulerian: bool,
    /// Bound on resident fragment memory in Longs. `None` (default) keeps
    /// every circuit fragment in memory; `Some(budget)` backs the fragment
    /// store with the out-of-core spill backing
    /// ([`crate::FragmentStore::spilling`]), which pages the coldest
    /// fragments to a temp file once the resident set exceeds the budget —
    /// circuits are bit-identical either way.
    pub fragment_memory_budget: Option<u64>,
    /// Directory the fragment spill file is created in when a
    /// [`fragment_memory_budget`](Self::fragment_memory_budget) is set.
    /// `None` (default) uses [`std::env::temp_dir`]. A broken directory does
    /// not fail the run — spilling falls back to resident fragments and the
    /// degradation surfaces in `RunReport::warnings`.
    pub fragment_spill_directory: Option<std::path::PathBuf>,
    /// Build level-0 partition tours with the one-pass W-streaming chain
    /// machine ([`crate::phase1::wstream`]) instead of the dense resident
    /// arena: edges are consumed straight off the source's
    /// [`euler_graph::EdgeStream`], partial tours spill through the fragment
    /// store, and resident traversal state stays `O(n log n)` — independent
    /// of the edge count. The merge-tree walk and Phase 3 are unchanged, so
    /// the mode composes with every backend and merge strategy.
    pub streaming_phase1: bool,
    /// Open-chain buffer capacity for the W-streaming pass, in tour edges
    /// per chain. `0` (default) selects the `Θ(log n)` default
    /// ([`crate::phase1::wstream::default_chunk_edges`]).
    pub wstream_chunk_edges: usize,
}

impl Default for EulerConfig {
    fn default() -> Self {
        EulerConfig {
            merge_strategy: MergeStrategy::Duplicated,
            parallel_within_level: true,
            verify: false,
            require_eulerian: true,
            fragment_memory_budget: None,
            fragment_spill_directory: None,
            streaming_phase1: false,
            wstream_chunk_edges: 0,
        }
    }
}

impl EulerConfig {
    /// Configuration using the paper's baseline merge strategy.
    pub fn paper_baseline() -> Self {
        Self::default()
    }

    /// Configuration using the §5 improvements (remote-edge deduplication and
    /// deferred transfer).
    pub fn improved() -> Self {
        EulerConfig { merge_strategy: MergeStrategy::Deferred, ..Default::default() }
    }

    /// Enables result verification.
    pub fn with_verify(mut self, yes: bool) -> Self {
        self.verify = yes;
        self
    }

    /// Sets the merge strategy.
    pub fn with_merge_strategy(mut self, s: MergeStrategy) -> Self {
        self.merge_strategy = s;
        self
    }

    /// Disables intra-level parallelism.
    pub fn sequential(mut self) -> Self {
        self.parallel_within_level = false;
        self
    }

    /// Bounds resident fragment memory to `longs` (the out-of-core spill
    /// mode; see [`EulerConfig::fragment_memory_budget`]).
    pub fn with_fragment_memory_budget(mut self, longs: u64) -> Self {
        self.fragment_memory_budget = Some(longs);
        self
    }

    /// Overrides the spill-file directory used under a fragment memory
    /// budget (see [`EulerConfig::fragment_spill_directory`]).
    pub fn with_fragment_spill_directory(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.fragment_spill_directory = Some(dir.into());
        self
    }

    /// Enables the W-streaming Phase-1 pass (see
    /// [`EulerConfig::streaming_phase1`]).
    pub fn with_streaming_phase1(mut self, yes: bool) -> Self {
        self.streaming_phase1 = yes;
        self
    }

    /// Sets the W-streaming open-chain buffer capacity (see
    /// [`EulerConfig::wstream_chunk_edges`]; `0` = `Θ(log n)` default).
    pub fn with_wstream_chunk_edges(mut self, edges: usize) -> Self {
        self.wstream_chunk_edges = edges;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        assert_eq!(EulerConfig::default(), EulerConfig::paper_baseline());
        assert_eq!(EulerConfig::default().merge_strategy, MergeStrategy::Duplicated);
    }

    #[test]
    fn improved_uses_deferred() {
        assert_eq!(EulerConfig::improved().merge_strategy, MergeStrategy::Deferred);
    }

    #[test]
    fn builder_methods() {
        let c = EulerConfig::default()
            .with_verify(true)
            .with_merge_strategy(MergeStrategy::Deduplicated)
            .sequential()
            .with_fragment_memory_budget(1 << 20);
        assert!(c.verify);
        assert!(!c.parallel_within_level);
        assert_eq!(c.merge_strategy, MergeStrategy::Deduplicated);
        assert_eq!(c.fragment_memory_budget, Some(1 << 20));
        assert_eq!(EulerConfig::default().fragment_memory_budget, None);
    }
}
