//! Phase 2 execution: merging pairs of partitions (§3.3.2).
//!
//! While the merge *tree* is planned statically ([`crate::merge_tree`]), the
//! actual merging of two partitions happens after Phase 1 has run on both at
//! a level: the child's path map and remaining state are transferred to the
//! parent's machine, the remote edges between the two become local edges of
//! the merged partition, and the surviving remote edges point onward to
//! partitions that merge at higher levels.
//!
//! This module also implements the load-time preprocessing of the §5
//! "avoid remote edge duplication" heuristic: given the merge tree, only the
//! lighter of the two eventual merge partners keeps each remote edge (the
//! heavier drops its copy), halving the remote-edge memory footprint.

use crate::merge_tree::MergeTree;
use crate::state::{EdgeRef, LocalEdge, RemoteRef, WorkingPartition};
use euler_graph::PartitionId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Statistics of one pair merge.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct MergeStats {
    /// Longs shipped from the child to the parent machine.
    pub transferred_longs: u64,
    /// Remote edges that became local edges of the merged partition.
    pub converted_edges: u64,
    /// Remote edges still pointing at other partitions after the merge.
    pub surviving_remote_edges: u64,
}

/// Drops duplicate remote-edge copies according to the §5 heuristic: for each
/// pair of leaf partitions, the one with more total remote edges (the
/// "heavier" one) drops its copies of the edges between them; the lighter one
/// retains them. Returns the number of remote-edge records removed.
pub fn apply_remote_edge_dedup(states: &mut [WorkingPartition]) -> u64 {
    // Total remote edges per leaf partition (the "weight" used to pick sides).
    let weight: HashMap<PartitionId, u64> =
        states.iter().map(|s| (s.id, s.remote_edges.len() as u64)).collect();
    let mut dropped = 0u64;
    for state in states.iter_mut() {
        let my_id = state.id;
        let my_weight = weight.get(&my_id).copied().unwrap_or(0);
        let before = state.remote_edges.len();
        state.remote_edges.retain(|r| {
            let other_weight = weight.get(&r.remote_leaf).copied().unwrap_or(0);
            // Keep the copy if this partition is the lighter of the pair
            // (ties broken toward the smaller partition id).
            my_weight < other_weight || (my_weight == other_weight && my_id < r.remote_leaf)
        });
        dropped += (before - state.remote_edges.len()) as u64;
    }
    dropped
}

/// Merges `child` into `parent` after the level-`level` matching, returning
/// the merged partition (whose id is the parent's) and merge statistics.
///
/// Remote edges whose other endpoint now belongs to the same merged partition
/// are converted into local edges; with the duplicated representation each
/// such edge appears once per side, so conversion is de-duplicated by edge id.
pub fn merge_partitions(
    parent: WorkingPartition,
    child: WorkingPartition,
    tree: &MergeTree,
    level: u32,
) -> (WorkingPartition, MergeStats) {
    let mut stats = MergeStats {
        transferred_longs: child.transfer_longs(),
        ..Default::default()
    };
    let merged_id = parent.id;
    let mut merged = WorkingPartition {
        id: merged_id,
        leaves: {
            let mut l = parent.leaves.clone();
            l.extend(child.leaves.iter().copied());
            l.sort_unstable();
            l.dedup();
            l
        },
        level: level + 1,
        local_edges: Vec::with_capacity(parent.local_edges.len() + child.local_edges.len()),
        remote_edges: Vec::new(),
        isolated_vertices: parent.isolated_vertices + child.isolated_vertices,
    };
    merged.local_edges.extend(parent.local_edges.iter().copied());
    merged.local_edges.extend(child.local_edges.iter().copied());

    let mut converted: HashSet<euler_graph::EdgeId> = HashSet::new();
    for r in parent.remote_edges.into_iter().chain(child.remote_edges) {
        let other_now = tree.representative_after(r.remote_leaf, level);
        if other_now == merged_id {
            // Becomes a local edge of the merged partition (once per edge id).
            if converted.insert(r.edge) {
                merged.local_edges.push(LocalEdge { edge: EdgeRef::Real(r.edge), u: r.local, v: r.remote });
            }
        } else {
            merged.remote_edges.push(r);
        }
    }
    stats.converted_edges = converted.len() as u64;
    stats.surviving_remote_edges = merged.remote_edges.len() as u64;
    (merged, stats)
}

/// The merge level at which a remote edge becomes local, given the merge
/// tree: the level whose matching first puts its two leaf endpoints in the
/// same merged partition. Used by the §5 deferred-transfer accounting.
pub fn remote_edge_needed_level(tree: &MergeTree, r: &RemoteRef) -> u32 {
    tree.merge_level_of(r.local_leaf, r.remote_leaf)
        .unwrap_or_else(|| tree.height().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::FragmentStore;
    use crate::phase1::run_phase1;
    use euler_gen::synthetic::paper_fig1;
    use euler_graph::{MetaGraph, PartitionedGraph, VertexId};

    fn fig1_setup() -> (Vec<WorkingPartition>, MergeTree) {
        let (g, a) = paper_fig1();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let meta = MetaGraph::from_partitioned(&pg);
        let tree = MergeTree::build(&meta);
        let states = pg.partitions().iter().map(WorkingPartition::from_partition).collect();
        (states, tree)
    }

    #[test]
    fn fig1_level0_merge_converts_cut_edges() {
        let (mut states, tree) = fig1_setup();
        let store = FragmentStore::new();
        for s in &mut states {
            run_phase1(s, &store);
        }
        // Merge P2 (index 2) into P3 (index 3) as the tree prescribes at level 0.
        let child = states[2].clone();
        let parent = states[3].clone();
        let (merged, stats) = merge_partitions(parent, child, &tree, 0);
        assert_eq!(merged.id, PartitionId(3));
        assert_eq!(merged.level, 1);
        assert_eq!(merged.leaves, vec![PartitionId(2), PartitionId(3)]);
        // The two cut edges between paper's P3 and P4 (e6,11 and e9,10) become local.
        assert_eq!(stats.converted_edges, 2);
        // Remaining remote edges of the merged partition: e3,13 and e12,14.
        assert_eq!(stats.surviving_remote_edges, 2);
        assert!(stats.transferred_longs > 0);
        // Local edges: P3's OB-pair + P4's OB-pairs + 2 converted edges.
        assert!(merged.local_edges.len() >= 3);
        assert!(merged
            .local_edges
            .iter()
            .any(|e| matches!(e.edge, EdgeRef::Virtual(_))));
    }

    #[test]
    fn duplicated_remote_edges_convert_once() {
        let (mut states, tree) = fig1_setup();
        let store = FragmentStore::new();
        for s in &mut states {
            run_phase1(s, &store);
        }
        let (merged, stats) = merge_partitions(states[1].clone(), states[0].clone(), &tree, 0);
        // Only one cut edge (e2,3) between paper's P1 and P2.
        assert_eq!(stats.converted_edges, 1);
        let real_locals = merged
            .local_edges
            .iter()
            .filter(|e| matches!(e.edge, EdgeRef::Real(_)))
            .count();
        assert_eq!(real_locals, 1);
    }

    #[test]
    fn dedup_halves_remote_edge_records() {
        let (mut states, _tree) = fig1_setup();
        let total_before: usize = states.iter().map(|s| s.remote_edges.len()).sum();
        let dropped = apply_remote_edge_dedup(&mut states);
        let total_after: usize = states.iter().map(|s| s.remote_edges.len()).sum();
        assert_eq!(total_before, 10); // 5 cut edges, duplicated
        assert_eq!(dropped, 5);
        assert_eq!(total_after, 5);
        // Every cut edge is retained by exactly one partition.
        let mut seen = std::collections::HashSet::new();
        for s in &states {
            for r in &s.remote_edges {
                assert!(seen.insert(r.edge), "edge {:?} retained twice", r.edge);
            }
        }
    }

    #[test]
    fn dedup_then_merge_still_converts_all_cut_edges() {
        let (mut states, tree) = fig1_setup();
        apply_remote_edge_dedup(&mut states);
        let store = FragmentStore::new();
        for s in &mut states {
            run_phase1(s, &store);
        }
        let (_m23, s23) = merge_partitions(states[3].clone(), states[2].clone(), &tree, 0);
        let (_m01, s01) = merge_partitions(states[1].clone(), states[0].clone(), &tree, 0);
        assert_eq!(s23.converted_edges, 2);
        assert_eq!(s01.converted_edges, 1);
    }

    #[test]
    fn needed_level_matches_merge_tree() {
        let (states, tree) = fig1_setup();
        // Remote edge between P2 and P3 (paper P3/P4) is needed at level 0.
        let p2 = &states[2];
        for r in &p2.remote_edges {
            if r.remote_leaf == PartitionId(3) {
                assert_eq!(remote_edge_needed_level(&tree, r), 0);
            }
        }
        // Remote edge between P0 and P3 is needed at level 1.
        let p0 = &states[0];
        let r = p0.remote_edges.iter().find(|r| r.remote_leaf == PartitionId(3)).unwrap();
        assert_eq!(remote_edge_needed_level(&tree, r), 1);
    }

    #[test]
    fn merge_carries_boundary_vertices_forward() {
        let (mut states, tree) = fig1_setup();
        let store = FragmentStore::new();
        for s in &mut states {
            run_phase1(s, &store);
        }
        let (merged, _) = merge_partitions(states[3].clone(), states[2].clone(), &tree, 0);
        // v13 (index 12) still has a remote edge to P1's side (e3,13).
        let rdeg = merged.remote_degrees();
        assert!(rdeg.contains_key(&VertexId(12)));
    }
}
