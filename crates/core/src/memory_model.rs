//! Analytical memory model for Fig. 8 (§5 "Analysis").
//!
//! The paper evaluates its two §5 heuristics analytically, by replaying the
//! per-level traces of the baseline runs and computing what the partition
//! memory state would have been under (a) the current algorithm, (b) an
//! *ideal* constant-per-partition memory case, and (c) the proposed
//! heuristics. This module reproduces that model from the same per-level
//! inputs so the Fig.-8 series (cumulative and average Longs per level for
//! current / ideal / proposed) can be regenerated both from measured runs and
//! purely analytically.

use crate::merge_strategy::MergeStrategy;
use serde::{Deserialize, Serialize};

/// Per-partition composition at one level, in Longs-relevant counts.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct PartitionLevelState {
    /// Retained vertices (boundary + internal still in memory).
    pub vertices: u64,
    /// Local edges (real or coarse) at the start of the level.
    pub local_edges: u64,
    /// Remote edges held at the start of the level (duplicated representation).
    pub remote_edges: u64,
    /// Of those remote edges, how many become local at this level's merge
    /// (i.e. are "needed now"); the rest are needed at higher levels.
    pub remote_needed_now: u64,
}

impl PartitionLevelState {
    /// Memory Longs under the paper's accounting (1/vertex, 3/local edge,
    /// 4/remote edge).
    pub fn longs(&self) -> u64 {
        self.vertices + 3 * self.local_edges + 4 * self.remote_edges
    }
}

/// One level of the model: the states of all active partitions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LevelTrace {
    /// Level index.
    pub level: u32,
    /// Active partitions' states.
    pub partitions: Vec<PartitionLevelState>,
}

/// The three Fig.-8 series derived from a trace.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MemoryModelSeries {
    /// Cumulative Longs per level.
    pub cumulative: Vec<u64>,
    /// Average Longs per active partition per level.
    pub average: Vec<f64>,
}

/// Computes the memory series for a given strategy from a per-level trace of
/// the baseline (duplicated) run.
///
/// * `Duplicated` reports the trace as-is.
/// * `Deduplicated` halves the remote-edge component (each edge kept once
///   instead of twice across the distributed memory).
/// * `Deferred` additionally drops, from each *active* partition, the remote
///   edges that are not needed until a higher level (they stay parked on idle
///   leaf machines).
pub fn model_series(trace: &[LevelTrace], strategy: MergeStrategy) -> MemoryModelSeries {
    let mut out = MemoryModelSeries::default();
    for level in trace {
        let mut total = 0u64;
        for p in &level.partitions {
            let remote = match strategy {
                MergeStrategy::Duplicated => p.remote_edges,
                MergeStrategy::Deduplicated => p.remote_edges.div_ceil(2),
                MergeStrategy::Deferred => p.remote_needed_now.min(p.remote_edges).div_ceil(2),
            };
            total += p.vertices + 3 * p.local_edges + 4 * remote;
        }
        let n = level.partitions.len().max(1) as f64;
        out.cumulative.push(total);
        out.average.push(total as f64 / n);
    }
    out
}

/// The paper's "ideal" reference series: the average per-partition state stays
/// constant at its level-0 value, and the cumulative is that value times the
/// number of active partitions at each level.
pub fn ideal_series(trace: &[LevelTrace]) -> MemoryModelSeries {
    let mut out = MemoryModelSeries::default();
    let level0_avg = trace
        .first()
        .map(|l| {
            let total: u64 = l.partitions.iter().map(|p| p.longs()).sum();
            total as f64 / l.partitions.len().max(1) as f64
        })
        .unwrap_or(0.0);
    for level in trace {
        let n = level.partitions.len() as f64;
        out.average.push(level0_avg);
        out.cumulative.push((level0_avg * n).round() as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<LevelTrace> {
        // 4 partitions shrinking to 1, with remote edges dominating like the
        // paper's G50/P8 observation.
        vec![
            LevelTrace {
                level: 0,
                partitions: (0..4)
                    .map(|_| PartitionLevelState {
                        vertices: 100,
                        local_edges: 400,
                        remote_edges: 700,
                        remote_needed_now: 300,
                    })
                    .collect(),
            },
            LevelTrace {
                level: 1,
                partitions: (0..2)
                    .map(|_| PartitionLevelState {
                        vertices: 150,
                        local_edges: 500,
                        remote_edges: 800,
                        remote_needed_now: 800,
                    })
                    .collect(),
            },
            LevelTrace {
                level: 2,
                partitions: vec![PartitionLevelState {
                    vertices: 200,
                    local_edges: 700,
                    remote_edges: 0,
                    remote_needed_now: 0,
                }],
            },
        ]
    }

    #[test]
    fn duplicated_matches_raw_longs() {
        let trace = sample_trace();
        let m = model_series(&trace, MergeStrategy::Duplicated);
        let expected_l0: u64 = 4 * (100 + 3 * 400 + 4 * 700);
        assert_eq!(m.cumulative[0], expected_l0);
        assert_eq!(m.average[0], expected_l0 as f64 / 4.0);
        assert_eq!(m.cumulative.len(), 3);
    }

    #[test]
    fn dedup_reduces_level0_by_remote_share() {
        let trace = sample_trace();
        let current = model_series(&trace, MergeStrategy::Duplicated);
        let dedup = model_series(&trace, MergeStrategy::Deduplicated);
        assert!(dedup.cumulative[0] < current.cumulative[0]);
        // The reduction equals half the remote-edge Longs.
        let expected_drop = 4 * 4 * (700 / 2) as u64;
        assert_eq!(current.cumulative[0] - dedup.cumulative[0], expected_drop);
    }

    #[test]
    fn deferred_is_never_larger_than_dedup() {
        let trace = sample_trace();
        let dedup = model_series(&trace, MergeStrategy::Deduplicated);
        let deferred = model_series(&trace, MergeStrategy::Deferred);
        for (a, b) in deferred.cumulative.iter().zip(dedup.cumulative.iter()) {
            assert!(a <= b, "deferred {a} > dedup {b}");
        }
    }

    #[test]
    fn root_level_is_identical_across_strategies() {
        // §5: the heuristics do not help at the last level (no remote edges).
        let trace = sample_trace();
        let cur = model_series(&trace, MergeStrategy::Duplicated);
        let def = model_series(&trace, MergeStrategy::Deferred);
        assert_eq!(cur.cumulative[2], def.cumulative[2]);
    }

    #[test]
    fn ideal_series_is_flat_in_average() {
        let trace = sample_trace();
        let ideal = ideal_series(&trace);
        assert_eq!(ideal.average.len(), 3);
        assert!((ideal.average[0] - ideal.average[2]).abs() < 1e-9);
        // Cumulative shrinks with the number of active partitions.
        assert!(ideal.cumulative[0] > ideal.cumulative[1]);
        assert!(ideal.cumulative[1] > ideal.cumulative[2]);
    }

    #[test]
    fn empty_trace_yields_empty_series() {
        let m = model_series(&[], MergeStrategy::Duplicated);
        assert!(m.cumulative.is_empty());
        let i = ideal_series(&[]);
        assert!(i.cumulative.is_empty());
    }
}
