//! Plain-text edge-list I/O and partition-assignment files.
//!
//! The formats mirror the de-facto standard used by graph tools such as
//! ParHIP/KaHIP drivers and the RMAT generators referenced in the paper:
//! an edge list is one `u v` pair per line (`#`-prefixed comment lines are
//! ignored); a partition file is one partition id per line, in vertex order.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::partitioned::PartitionAssignment;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `g` as a plain-text edge list (`u v` per line) to `writer`.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", g.num_vertices(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` as a plain-text edge list to the file at `path`.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

/// Line-level scanner for the plain-text edge-list format: one line in, at
/// most one edge out.
///
/// This is the piece of the parse that is independent of *what is built from
/// the edges*: [`EdgeListParser`] feeds the emitted edges into a
/// [`GraphBuilder`], while [`crate::source::EdgeListEdgeStream`] batches
/// them straight into an edge stream without ever materialising a graph. The
/// scanner tracks the 1-based line number itself, so every
/// [`GraphError::Parse`] it raises — missing field, malformed vertex id,
/// malformed `# vertices N` header — carries the exact offending position
/// regardless of how the caller buffers the input.
#[derive(Debug, Default)]
pub struct EdgeLineScanner {
    declared_vertices: u64,
    max_seen: Option<u64>,
    line: usize,
}

impl EdgeLineScanner {
    /// Creates a scanner at line 0 with nothing declared.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lines fed so far.
    pub fn lines_fed(&self) -> usize {
        self.line
    }

    /// 1-based number of the line a [`feed_line`](Self::feed_line) call is
    /// about to consume — the position callers should attribute their own
    /// errors (e.g. invalid UTF-8 in a byte chunk) to.
    pub fn next_line(&self) -> usize {
        self.line + 1
    }

    /// The vertex count implied by everything fed so far: largest id seen
    /// plus one, or the declared `# vertices N` header count if larger —
    /// exactly the count a [`GraphBuilder`] pass over the same lines
    /// produces.
    pub fn num_vertices(&self) -> u64 {
        self.declared_vertices.max(self.max_seen.map_or(0, |m| m + 1))
    }

    /// Consumes one line (without its terminator), returning the edge it
    /// holds, if any.
    ///
    /// Blank lines and `%` comments yield `None`; `#` comments yield `None`
    /// except for the optional `# vertices N edges M` header, whose vertex
    /// count must parse. Any other line must hold two vertex ids.
    pub fn feed_line(&mut self, line: &str) -> Result<Option<(u64, u64)>, GraphError> {
        self.line += 1;
        let line = line.trim();
        if line.is_empty() {
            return Ok(None);
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Optional header: "# vertices N edges M". A free-form comment
            // that merely starts with the word "vertices" stays a comment;
            // only the structured header shape (third token "edges") demands
            // a parseable count.
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() >= 2 && toks[0] == "vertices" {
                match toks[1].parse::<u64>() {
                    Ok(n) => self.declared_vertices = self.declared_vertices.max(n),
                    Err(e) if toks.get(2) == Some(&"edges") => {
                        return Err(GraphError::Parse {
                            line: self.line,
                            message: format!("bad vertex count {:?} in header: {e}", toks[1]),
                        });
                    }
                    Err(_) => {}
                }
            }
            return Ok(None);
        }
        if line.starts_with('%') {
            return Ok(None);
        }
        let mut it = line.split_whitespace();
        let u = self.parse_field(it.next())?;
        let v = self.parse_field(it.next())?;
        self.max_seen = Some(self.max_seen.map_or(u.max(v), |m| m.max(u).max(v)));
        Ok(Some((u, v)))
    }

    fn parse_field(&self, tok: Option<&str>) -> Result<u64, GraphError> {
        let line = self.line;
        let tok =
            tok.ok_or(GraphError::Parse { line, message: "expected two vertex ids".into() })?;
        tok.parse::<u64>().map_err(|e| GraphError::Parse {
            line,
            message: format!("bad vertex id {tok:?}: {e}"),
        })
    }
}

/// Incremental line-at-a-time parser for the plain-text edge-list format.
///
/// This is the single graph-building parser behind both [`read_edge_list`]
/// (whole-reader) and [`crate::source::EdgeListFileSource`] (chunked
/// streaming reads): feed it one line at a time in file order and call
/// [`finish`](EdgeListParser::finish) at the end. Line recognition and error
/// attribution live in the shared [`EdgeLineScanner`].
#[derive(Debug, Default)]
pub struct EdgeListParser {
    builder: GraphBuilder,
    scanner: EdgeLineScanner,
}

impl EdgeListParser {
    /// Creates a parser with an empty graph under construction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of lines fed so far.
    pub fn lines_fed(&self) -> usize {
        self.scanner.lines_fed()
    }

    /// 1-based number of the line the next [`feed_line`](Self::feed_line)
    /// call will consume (see [`EdgeLineScanner::next_line`]).
    pub fn next_line(&self) -> usize {
        self.scanner.next_line()
    }

    /// Consumes one line (without its terminator); see
    /// [`EdgeLineScanner::feed_line`] for the recognised shapes.
    pub fn feed_line(&mut self, line: &str) -> Result<(), GraphError> {
        if let Some((u, v)) = self.scanner.feed_line(line)? {
            self.builder.add_edge(u, v);
        }
        Ok(())
    }

    /// Builds the parsed graph. The vertex count is the largest id seen plus
    /// one, or the declared header count if larger.
    pub fn finish(mut self) -> Result<Graph, GraphError> {
        self.builder.ensure_vertices(self.scanner.num_vertices());
        self.builder.build()
    }
}

/// Reads a plain-text edge list from `reader`.
///
/// Lines starting with `#` or `%` are ignored (except the optional
/// `# vertices N edges M` header). The vertex count is the largest id seen
/// plus one (or the count declared in the header if larger). Parse errors
/// report the 1-based offending line via [`GraphError::Parse`].
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let r = BufReader::new(reader);
    let mut parser = EdgeListParser::new();
    for line in r.lines() {
        parser.feed_line(&line?)?;
    }
    parser.finish()
}

/// Reads an edge list from the file at `path`.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Writes a partition assignment, one partition id per line in vertex order.
pub fn write_partition_file<W: Write>(a: &PartitionAssignment, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for v in 0..a.num_vertices() {
        writeln!(w, "{}", a.partition_of(crate::ids::VertexId(v)).0)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a partition assignment written by [`write_partition_file`].
pub fn read_partition_file<R: Read>(reader: R) -> Result<PartitionAssignment, GraphError> {
    let r = BufReader::new(reader);
    let mut labels = Vec::new();
    let mut max_label = 0u32;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let label: u32 = line
            .parse()
            .map_err(|e| GraphError::Parse { line: lineno + 1, message: format!("bad partition id: {e}") })?;
        max_label = max_label.max(label);
        labels.push(label);
    }
    PartitionAssignment::from_labels(labels, max_label + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::ids::{PartitionId, VertexId};

    #[test]
    fn edge_list_roundtrip() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g.degree(v), g2.degree(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n% another\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn header_vertex_count_respected() {
        let text = "# vertices 10 edges 1\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "0 1\nnot_a_vertex 2\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_second_vertex_is_a_parse_error() {
        let text = "0\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn missing_second_vertex_reports_its_line_number() {
        // Blank and comment lines before the bad one still count toward the
        // reported position.
        let text = "# header comment\n\n0 1\n1 2\n7\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 5);
                assert!(message.contains("two vertex ids"), "unexpected message {message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn malformed_header_vertex_count_reports_line_number() {
        let text = "0 1\n# vertices not_a_number edges 3\n1 0\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("vertex count"), "unexpected message {message}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn free_form_comment_starting_with_vertices_is_not_a_header() {
        // Only the structured "# vertices N edges M" shape must parse; a
        // descriptive comment stays a comment.
        let text = "# vertices are 0-indexed\n0 1\n1 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 2);
    }

    #[test]
    fn incremental_parser_matches_whole_reader_parse() {
        let text = "# vertices 6 edges 3\n0 1\n% ignored\n1 2\n2 0\n";
        let mut parser = EdgeListParser::new();
        for line in text.lines() {
            parser.feed_line(line).unwrap();
        }
        assert_eq!(parser.lines_fed(), 5);
        assert_eq!(parser.next_line(), 6);
        let g1 = parser.finish().unwrap();
        let g2 = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(g1.num_vertices(), 6);
        assert_eq!(g1.num_edges(), g2.num_edges());
    }

    #[test]
    fn partition_file_roundtrip() {
        let a = PartitionAssignment::from_labels(vec![0, 1, 1, 2, 0], 3).unwrap();
        let mut buf = Vec::new();
        write_partition_file(&a, &mut buf).unwrap();
        let a2 = read_partition_file(&buf[..]).unwrap();
        assert_eq!(a2.num_partitions(), 3);
        for v in 0..5 {
            assert_eq!(a2.partition_of(VertexId(v)), a.partition_of(VertexId(v)));
        }
        assert_eq!(a2.partition_of(VertexId(3)), PartitionId(2));
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let dir = std::env::temp_dir().join("euler_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("triangle.el");
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }
}
