//! Plain-text edge-list I/O and partition-assignment files.
//!
//! The formats mirror the de-facto standard used by graph tools such as
//! ParHIP/KaHIP drivers and the RMAT generators referenced in the paper:
//! an edge list is one `u v` pair per line (`#`-prefixed comment lines are
//! ignored); a partition file is one partition id per line, in vertex order.

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::partitioned::PartitionAssignment;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Writes `g` as a plain-text edge list (`u v` per line) to `writer`.
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", g.num_vertices(), g.num_edges())?;
    for (_, u, v) in g.edges() {
        writeln!(w, "{} {}", u.0, v.0)?;
    }
    w.flush()?;
    Ok(())
}

/// Writes `g` as a plain-text edge list to the file at `path`.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

/// Reads a plain-text edge list from `reader`.
///
/// Lines starting with `#` or `%` are ignored. The vertex count is the largest
/// id seen plus one (or the count declared in a `# vertices N edges M` header
/// if larger).
pub fn read_edge_list<R: Read>(reader: R) -> Result<Graph, GraphError> {
    let r = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    let mut declared_vertices: u64 = 0;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            // Optional header: "# vertices N edges M"
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() >= 2 && toks[0] == "vertices" {
                if let Ok(n) = toks[1].parse::<u64>() {
                    declared_vertices = declared_vertices.max(n);
                }
            }
            continue;
        }
        if line.starts_with('%') {
            continue;
        }
        let mut it = line.split_whitespace();
        let u = parse_field(it.next(), lineno + 1)?;
        let v = parse_field(it.next(), lineno + 1)?;
        builder.add_edge(u, v);
    }
    builder.ensure_vertices(declared_vertices);
    builder.build()
}

fn parse_field(tok: Option<&str>, line: usize) -> Result<u64, GraphError> {
    let tok = tok.ok_or(GraphError::Parse { line, message: "expected two vertex ids".into() })?;
    tok.parse::<u64>().map_err(|e| GraphError::Parse { line, message: format!("bad vertex id {tok:?}: {e}") })
}

/// Reads an edge list from the file at `path`.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<Graph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Writes a partition assignment, one partition id per line in vertex order.
pub fn write_partition_file<W: Write>(a: &PartitionAssignment, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    for v in 0..a.num_vertices() {
        writeln!(w, "{}", a.partition_of(crate::ids::VertexId(v)).0)?;
    }
    w.flush()?;
    Ok(())
}

/// Reads a partition assignment written by [`write_partition_file`].
pub fn read_partition_file<R: Read>(reader: R) -> Result<PartitionAssignment, GraphError> {
    let r = BufReader::new(reader);
    let mut labels = Vec::new();
    let mut max_label = 0u32;
    for (lineno, line) in r.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let label: u32 = line
            .parse()
            .map_err(|e| GraphError::Parse { line: lineno + 1, message: format!("bad partition id: {e}") })?;
        max_label = max_label.max(label);
        labels.push(label);
    }
    PartitionAssignment::from_labels(labels, max_label + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::ids::{PartitionId, VertexId};

    #[test]
    fn edge_list_roundtrip() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(g.degree(v), g2.degree(v));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# a comment\n% another\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 3);
    }

    #[test]
    fn header_vertex_count_respected() {
        let text = "# vertices 10 edges 1\n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_line_reports_line_number() {
        let text = "0 1\nnot_a_vertex 2\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn missing_second_vertex_is_a_parse_error() {
        let text = "0\n";
        assert!(matches!(read_edge_list(text.as_bytes()), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn partition_file_roundtrip() {
        let a = PartitionAssignment::from_labels(vec![0, 1, 1, 2, 0], 3).unwrap();
        let mut buf = Vec::new();
        write_partition_file(&a, &mut buf).unwrap();
        let a2 = read_partition_file(&buf[..]).unwrap();
        assert_eq!(a2.num_partitions(), 3);
        for v in 0..5 {
            assert_eq!(a2.partition_of(VertexId(v)), a.partition_of(VertexId(v)));
        }
        assert_eq!(a2.partition_of(VertexId(3)), PartitionId(2));
    }

    #[test]
    fn file_roundtrip_on_disk() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let dir = std::env::temp_dir().join("euler_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("triangle.el");
        write_edge_list_file(&g, &path).unwrap();
        let g2 = read_edge_list_file(&path).unwrap();
        assert_eq!(g2.num_edges(), 3);
        std::fs::remove_file(&path).ok();
    }
}
