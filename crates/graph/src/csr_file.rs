//! The `.ecsr` binary CSR on-disk format: write once, map forever.
//!
//! The paper targets graphs larger than one machine's memory; the StrSort
//! line of Euler-tour work (Kliemann et al.) treats the graph as a
//! sequential external artifact. This module is that artifact's concrete
//! shape: a versioned, checksummed, little-endian binary file holding the
//! compressed-sparse-row arrays of a [`Graph`] in 8-byte-aligned sections,
//! so a reader can `mmap` the file and use the arrays in place — no parse,
//! no [`crate::GraphBuilder`] pass, no per-edge allocation.
//!
//! The normative byte-level specification lives in
//! [`crate::format_spec`] (docs/FORMAT.md); this module is its reference
//! implementation:
//!
//! * [`write_csr_file`] serialises a [`Graph`] to a `.ecsr` file.
//! * [`CsrFile`] opens one read-only via [`memmap2::Mmap`], validates it
//!   (magic, version, endianness, section bounds/alignment, checksum,
//!   structural invariants) and exposes the sections as zero-copy `&[u64]`
//!   slices.
//! * [`CsrFile::to_graph`] reconstructs the exact original [`Graph`]
//!   (adjacency order and edge endpoint order included, so downstream runs
//!   are bit-identical to in-memory ones).
//! * [`CsrFile::partitioned`] slices the mapped arrays straight into a
//!   [`PartitionedGraph`] for a given assignment — the multi-GB path that
//!   never materialises a `Graph` at all.
//!
//! Corrupt or foreign files fail with a typed [`CsrFileError`] wrapped in
//! [`GraphError::CsrFormat`].

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use crate::partitioned::{PartitionAssignment, PartitionedGraph};
use memmap2::Mmap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::ops::Range;
use std::path::Path;

/// File magic: `ECSR` followed by the PNG-style `\r\n\x1a\n` guard that
/// detects text-mode line-ending mangling and truncation-by-EOF-char.
pub const MAGIC: [u8; 8] = *b"ECSR\r\n\x1a\n";

/// Current (and only) format version.
pub const VERSION: u32 = 1;

/// Endianness tag as stored in a well-formed little-endian file.
pub const ENDIAN_TAG: u32 = 0x0102_0304;

/// Header size in bytes. Sections start at or after this offset, 8-aligned.
pub const HEADER_BYTES: u64 = 80;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Typed failures when opening or validating a `.ecsr` file.
///
/// Every variant names what was wrong and where, so tooling can distinguish
/// "not an .ecsr file at all" from "right format, damaged in transit".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrFileError {
    /// The first 8 bytes are not the `.ecsr` magic.
    BadMagic {
        /// The bytes actually found (file may be shorter; zero-padded).
        found: [u8; 8],
    },
    /// The header's version is not one this reader supports.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Highest version this reader understands.
        supported: u32,
    },
    /// The endianness tag does not match little-endian byte order (either a
    /// foreign-endian writer, or a big-endian host reading a valid file).
    ForeignEndianness {
        /// The tag as read with little-endian interpretation.
        tag: u32,
    },
    /// The file ends before a section (or the header) is complete.
    Truncated {
        /// Which part of the file is incomplete.
        what: &'static str,
        /// Bytes required for that part.
        needed: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// A section's file offset is not 8-byte aligned.
    Misaligned {
        /// The offending section.
        what: &'static str,
        /// Its recorded byte offset.
        offset: u64,
    },
    /// The FNV-1a checksum over the section bytes does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum computed over the mapped bytes.
        actual: u64,
    },
    /// The sections are well-framed but violate a CSR invariant (offsets not
    /// monotone, ids out of range, half-edge count mismatch, ...).
    Invalid {
        /// Description of the violated invariant.
        message: String,
    },
}

impl fmt::Display for CsrFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrFileError::BadMagic { found } => {
                write!(f, "not an .ecsr file: magic {found:02x?} (expected {MAGIC:02x?})")
            }
            CsrFileError::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported .ecsr version {found} (this reader supports <= {supported})")
            }
            CsrFileError::ForeignEndianness { tag } => {
                write!(
                    f,
                    ".ecsr endianness tag {tag:#010x} is not little-endian \
                     (expected {ENDIAN_TAG:#010x} on a little-endian host)"
                )
            }
            CsrFileError::Truncated { what, needed, actual } => {
                write!(f, ".ecsr file truncated: {what} needs {needed} bytes, {actual} available")
            }
            CsrFileError::Misaligned { what, offset } => {
                write!(f, ".ecsr section {what} at byte offset {offset} is not 8-byte aligned")
            }
            CsrFileError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    ".ecsr checksum mismatch: header records {expected:#018x}, \
                     sections hash to {actual:#018x}"
                )
            }
            CsrFileError::Invalid { message } => write!(f, "invalid .ecsr structure: {message}"),
        }
    }
}

/// Streaming FNV-1a 64 hasher folding whole little-endian words — the
/// format's sections are `u64` arrays, and word folding keeps the checksum
/// pass at memory bandwidth instead of byte-loop speed.
#[derive(Clone, Copy)]
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    fn update_words(&mut self, words: &[u64]) {
        let mut h = self.0;
        for &w in words {
            h ^= w;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// A writer that tees every word into the checksum.
struct ChecksummedWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> ChecksummedWriter<W> {
    fn new(inner: W) -> Self {
        ChecksummedWriter { inner, hash: Fnv1a::new() }
    }

    fn put_u64(&mut self, word: u64) -> std::io::Result<()> {
        self.hash.update_words(&[word]);
        self.inner.write_all(&word.to_le_bytes())
    }
}

/// Serialises `g` into a `.ecsr` file at `path` (created or truncated).
///
/// The file holds four 8-aligned little-endian `u64` sections — CSR offsets,
/// half-edge targets, half-edge edge ids, and per-edge endpoint pairs — plus
/// an 80-byte header with counts, section offsets and an FNV-1a checksum
/// folded over all section words. See [`crate::format_spec`] for the byte
/// layout.
///
/// # Errors
/// Propagates I/O errors as [`GraphError::Io`].
pub fn write_csr_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    let mut file = File::create(path)?;
    let n = g.num_vertices();
    let m = g.num_edges();
    let half_edges = 2 * m;

    let offsets_off = HEADER_BYTES;
    let targets_off = offsets_off + 8 * (n + 1);
    let edge_ids_off = targets_off + 8 * half_edges;
    let endpoints_off = edge_ids_off + 8 * half_edges;

    // Header with a zero checksum placeholder; rewritten once sections are
    // hashed. Streaming keeps peak memory at the BufWriter's buffer.
    let mut header = [0u8; HEADER_BYTES as usize];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&ENDIAN_TAG.to_le_bytes());
    header[16..24].copy_from_slice(&n.to_le_bytes());
    header[24..32].copy_from_slice(&m.to_le_bytes());
    header[32..40].copy_from_slice(&offsets_off.to_le_bytes());
    header[40..48].copy_from_slice(&targets_off.to_le_bytes());
    header[48..56].copy_from_slice(&edge_ids_off.to_le_bytes());
    header[56..64].copy_from_slice(&endpoints_off.to_le_bytes());
    file.write_all(&header)?;

    let mut w = ChecksummedWriter::new(BufWriter::new(&mut file));
    // Offsets section: running half-edge count per vertex, then the total.
    let mut running = 0u64;
    for v in g.vertices() {
        w.put_u64(running)?;
        running += g.degree(v);
    }
    w.put_u64(running)?;
    debug_assert_eq!(running, half_edges);
    // Targets then edge-ids sections, in adjacency (insertion) order.
    for v in g.vertices() {
        for &(nbr, _) in g.neighbors(v) {
            w.put_u64(nbr.0)?;
        }
    }
    for v in g.vertices() {
        for &(_, e) in g.neighbors(v) {
            w.put_u64(e.0)?;
        }
    }
    // Endpoints section: (u, v) per edge in EdgeId (insertion) order.
    for (_, u, v) in g.edges() {
        w.put_u64(u.0)?;
        w.put_u64(v.0)?;
    }
    let checksum = w.hash.finish();
    w.inner.flush()?;
    drop(w);

    file.seek(SeekFrom::Start(64))?;
    file.write_all(&checksum.to_le_bytes())?;
    file.flush()?;
    Ok(())
}

/// A validated, memory-mapped `.ecsr` file.
///
/// All accessors read the mapped bytes in place; nothing is copied. The CSR
/// arrays follow the same conventions as [`crate::Csr`]: vertex `v`'s
/// incident half-edges occupy `targets()[offsets()[v]..offsets()[v+1]]` (and
/// `edge_ids()` in parallel), with a self-loop appearing twice.
#[derive(Debug)]
pub struct CsrFile {
    map: Mmap,
    num_vertices: u64,
    num_edges: u64,
    offsets: Range<usize>,
    targets: Range<usize>,
    edge_ids: Range<usize>,
    endpoints: Range<usize>,
}

impl CsrFile {
    /// Opens and fully validates the `.ecsr` file at `path`: header fields,
    /// section bounds and alignment, the FNV-1a checksum over every section
    /// word, and the structural CSR invariants (monotone offsets, in-range
    /// vertex/edge ids, and per-vertex degree agreement between the
    /// endpoints and offsets sections). After `open` succeeds, no
    /// file-corruption failure remains: the slice accessors and
    /// [`to_graph`](Self::to_graph) cannot panic or read out of bounds, and
    /// [`partitioned`](Self::partitioned) can only fail on a caller-side
    /// mismatch (an assignment that does not cover this file's vertices).
    ///
    /// # Errors
    /// [`GraphError::Io`] on filesystem failures, [`GraphError::CsrFormat`]
    /// for every malformed-file condition.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<CsrFile, GraphError> {
        let this = Self::open_trusted(path)?;
        this.verify_checksum()?;
        this.validate_structure()?;
        Ok(this)
    }

    /// Opens the file checking only the header frame (magic, version,
    /// endianness, section bounds and alignment) — no checksum pass, no
    /// structural scan, so nothing beyond the header is paged in.
    ///
    /// Use this for very large files from a trusted local producer; the
    /// zero-copy accessors then fault pages in lazily as partitions touch
    /// them. A corrupt section will surface as wrong results or an
    /// out-of-range panic downstream rather than a typed error here.
    ///
    /// # Errors
    /// Same as [`open`](Self::open) minus the checksum/structure cases.
    pub fn open_trusted<P: AsRef<Path>>(path: P) -> Result<CsrFile, GraphError> {
        let file = File::open(path)?;
        let map = Mmap::map(&file)?;
        let len = map.len() as u64;
        // Every header read below is bounds-checked: the bytes come straight
        // from disk and may be arbitrarily short or corrupt, and open errors
        // are typed, never panics.
        if map.get(0..8) != Some(MAGIC.as_slice()) {
            let mut found = [0u8; 8];
            for (dst, &src) in found.iter_mut().zip(map.iter()) {
                *dst = src;
            }
            return Err(CsrFileError::BadMagic { found }.into());
        }
        if len < HEADER_BYTES {
            return Err(CsrFileError::Truncated {
                what: "header",
                needed: HEADER_BYTES,
                actual: len,
            }
            .into());
        }
        let le_u32 = |at: usize| {
            map.get(at..at + 4)
                .and_then(|s| s.try_into().ok())
                .map(u32::from_le_bytes)
                .ok_or(CsrFileError::Truncated { what: "header", needed: HEADER_BYTES, actual: len })
        };
        let le_u64 = |at: usize| {
            map.get(at..at + 8)
                .and_then(|s| s.try_into().ok())
                .map(u64::from_le_bytes)
                .ok_or(CsrFileError::Truncated { what: "header", needed: HEADER_BYTES, actual: len })
        };
        let tag = le_u32(12)?;
        if tag != ENDIAN_TAG || cfg!(target_endian = "big") {
            // A big-endian host cannot reinterpret the little-endian sections
            // in place; report it the same way as a foreign-endian file.
            return Err(CsrFileError::ForeignEndianness { tag }.into());
        }
        let version = le_u32(8)?;
        if version != VERSION {
            return Err(CsrFileError::UnsupportedVersion { found: version, supported: VERSION }.into());
        }
        let num_vertices = le_u64(16)?;
        let num_edges = le_u64(24)?;
        let offsets_words = num_vertices
            .checked_add(1)
            .ok_or(CsrFileError::Invalid { message: "vertex count overflows".into() })?;
        let half_edges = num_edges
            .checked_mul(2)
            .ok_or(CsrFileError::Invalid { message: "edge count overflows".into() })?;

        let section = |what: &'static str, off: u64, words: u64| -> Result<Range<usize>, GraphError> {
            if !off.is_multiple_of(8) {
                return Err(CsrFileError::Misaligned { what, offset: off }.into());
            }
            let bytes = words
                .checked_mul(8)
                .and_then(|b| off.checked_add(b))
                .ok_or(CsrFileError::Invalid { message: format!("section {what} overflows") })?;
            if off < HEADER_BYTES || bytes > len {
                return Err(CsrFileError::Truncated { what, needed: bytes, actual: len }.into());
            }
            Ok(off as usize..bytes as usize)
        };
        let offsets = section("offsets", le_u64(32)?, offsets_words)?;
        let targets = section("targets", le_u64(40)?, half_edges)?;
        let edge_ids = section("edge_ids", le_u64(48)?, half_edges)?;
        let endpoints = section("endpoints", le_u64(56)?, half_edges)?;

        Ok(CsrFile { map, num_vertices, num_edges, offsets, targets, edge_ids, endpoints })
    }

    /// Recomputes the section checksum and compares it to the header's.
    fn verify_checksum(&self) -> Result<(), GraphError> {
        let expected = self
            .map
            .get(64..72)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .ok_or(CsrFileError::Truncated {
                what: "checksum",
                needed: HEADER_BYTES,
                actual: self.map.len() as u64,
            })?;
        let mut hash = Fnv1a::new();
        for section in [self.offsets(), self.targets(), self.edge_ids(), self.endpoints_flat()] {
            hash.update_words(section);
        }
        let actual = hash.finish();
        if actual != expected {
            return Err(CsrFileError::ChecksumMismatch { expected, actual }.into());
        }
        Ok(())
    }

    /// Checks the CSR invariants the zero-copy consumers rely on.
    fn validate_structure(&self) -> Result<(), GraphError> {
        let invalid = |message: String| GraphError::from(CsrFileError::Invalid { message });
        let offsets = self.offsets();
        let half_edges = 2 * self.num_edges;
        if offsets.first() != Some(&0) {
            return Err(invalid("offsets[0] must be 0".into()));
        }
        if offsets.windows(2).any(|w| matches!(w, &[lo, hi] if lo > hi)) {
            return Err(invalid("offsets must be monotonically non-decreasing".into()));
        }
        let last = offsets
            .last()
            .copied()
            .ok_or_else(|| invalid("offsets section is empty".into()))?;
        if last != half_edges {
            return Err(invalid(format!(
                "offsets[{}] = {last} but the graph has {half_edges} half-edges",
                self.num_vertices,
            )));
        }
        if let Some(&t) = self.targets().iter().find(|&&t| t >= self.num_vertices) {
            return Err(invalid(format!("target vertex {t} out of range (n = {})", self.num_vertices)));
        }
        if let Some(&e) = self.edge_ids().iter().find(|&&e| e >= self.num_edges) {
            return Err(invalid(format!("edge id {e} out of range (m = {})", self.num_edges)));
        }
        if let Some(&v) = self.endpoints_flat().iter().find(|&&v| v >= self.num_vertices) {
            return Err(invalid(format!("endpoint vertex {v} out of range (n = {})", self.num_vertices)));
        }
        // Cross-check the two graph descriptions: the degree of every vertex
        // under the endpoints section (a self-loop counts twice, matching the
        // duplicated adjacency entry) must equal its offsets range. This is
        // what lets the pipeline run its Eulerian pre-check off the offsets
        // while slicing partitions from the endpoints.
        let mut degrees = vec![0u64; self.num_vertices as usize];
        for &v in self.endpoints_flat() {
            // Every endpoint was range-checked above; a miss here would mean
            // the map changed underneath us, and is simply not counted.
            if let Some(d) = degrees.get_mut(v as usize) {
                *d += 1;
            }
        }
        for (v, (&d, w)) in degrees.iter().zip(offsets.windows(2)).enumerate() {
            let &[lo, hi] = w else { continue };
            if d != hi - lo {
                return Err(invalid(format!(
                    "vertex v{v} has degree {d} under the endpoints section but {} under offsets",
                    hi - lo
                )));
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Reinterprets a validated byte range as a `u64` slice, in place.
    fn words(&self, range: &Range<usize>) -> &[u64] {
        let bytes = &self.map[range.clone()];
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0, "sections are 8-aligned");
        // SAFETY: the range is in bounds (validated at open), its length is a
        // multiple of 8 by construction, the mapping's base is 8-aligned
        // (page-aligned mmap or the shim's word-backed fallback) and section
        // offsets are validated to be 8-aligned; u64 has no invalid bit
        // patterns and the mapping outlives `self`.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
    }

    /// CSR offsets: `num_vertices + 1` entries, `offsets()[v]..offsets()[v+1]`
    /// indexing the half-edges of vertex `v`.
    pub fn offsets(&self) -> &[u64] {
        self.words(&self.offsets)
    }

    /// Half-edge target vertices, `2 * num_edges` entries.
    pub fn targets(&self) -> &[u64] {
        self.words(&self.targets)
    }

    /// Half-edge edge identifiers, parallel to [`targets`](Self::targets).
    pub fn edge_ids(&self) -> &[u64] {
        self.words(&self.edge_ids)
    }

    /// Endpoint pairs in edge-id order, flattened: edge `e` has endpoints
    /// `(flat[2e], flat[2e + 1])` in original insertion order.
    pub fn endpoints_flat(&self) -> &[u64] {
        self.words(&self.endpoints)
    }

    /// Degree of `v` (self-loops count twice), straight from the offsets.
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        let offsets = self.offsets();
        offsets[v.index() + 1] - offsets[v.index()]
    }

    /// First vertex with odd degree, if any — the Eulerian pre-check, read
    /// from the offsets section alone (no edge data is touched).
    pub fn first_odd_vertex(&self) -> Option<(VertexId, u64)> {
        let offsets = self.offsets();
        (0..self.num_vertices as usize)
            .map(|v| (VertexId(v as u64), offsets[v + 1] - offsets[v]))
            .find(|&(_, d)| d % 2 == 1)
    }

    /// Reconstructs the exact [`Graph`] this file was written from: same
    /// vertex count, same edge ids and endpoint order, same adjacency order.
    /// One pass over the mapped sections with exact preallocation — no
    /// [`crate::GraphBuilder`] involved.
    pub fn to_graph(&self) -> Graph {
        let n = self.num_vertices as usize;
        let offsets = self.offsets();
        let targets = self.targets();
        let edge_ids = self.edge_ids();
        let endpoints: Vec<(VertexId, VertexId)> = self
            .endpoints_flat()
            .chunks_exact(2)
            .map(|p| (VertexId(p[0]), VertexId(p[1])))
            .collect();
        let mut adjacency: Vec<Vec<(VertexId, EdgeId)>> = Vec::with_capacity(n);
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            adjacency.push(
                targets[lo..hi]
                    .iter()
                    .zip(&edge_ids[lo..hi])
                    .map(|(&t, &e)| (VertexId(t), EdgeId(e)))
                    .collect(),
            );
        }
        Graph { num_vertices: self.num_vertices, endpoints, adjacency }
    }

    /// Builds the partition-centric view (§3.1 of the paper) for
    /// `assignment` straight from the mapped endpoint section — the same
    /// partitions, in the same order, as
    /// [`PartitionedGraph::from_assignment`] over the original graph, without
    /// ever materialising the graph.
    ///
    /// # Errors
    /// [`GraphError::IncompleteAssignment`] when the assignment does not
    /// cover every vertex of the file.
    pub fn partitioned(&self, assignment: &PartitionAssignment) -> Result<PartitionedGraph, GraphError> {
        // The mapped endpoints section iterates in ascending edge id — the
        // same order as `Graph::edges` — and both paths share the one
        // partition-view construction, so the partitions come out identical
        // to `PartitionedGraph::from_assignment` over the original graph.
        let edges = self
            .endpoints_flat()
            .chunks_exact(2)
            .enumerate()
            .map(|(e, pair)| (EdgeId(e as u64), VertexId(pair[0]), VertexId(pair[1])));
        crate::partitioned::build_partition_view(self.num_vertices, self.num_edges, assignment, edges)
    }

    /// The file's FNV-1a content checksum, as recorded in its header — the
    /// identity of the graph's *content* (two files packed from the same
    /// graph carry the same checksum). [`open`](Self::open) has already
    /// verified it against the sections; this accessor just reads it back,
    /// so it can serve as a registry/cache key.
    pub fn checksum(&self) -> u64 {
        self.map
            .get(64..72)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0)
    }

    /// Total size of the mapped file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.map.len() as u64
    }

    /// True when the file is backed by a kernel memory mapping (as opposed to
    /// the shim's whole-file read fallback).
    pub fn is_kernel_mapping(&self) -> bool {
        self.map.is_kernel_mapping()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::csr::Csr;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("euler_graph_csr_file_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn assert_graphs_identical(a: &Graph, b: &Graph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for (e, u, v) in a.edges() {
            assert_eq!((u, v), b.endpoints(e), "endpoints of {e}");
        }
        for v in a.vertices() {
            assert_eq!(a.neighbors(v), b.neighbors(v), "adjacency of {v}");
        }
    }

    #[test]
    fn roundtrip_reconstructs_the_exact_graph() {
        // Parallel edges, a self-loop, an isolated vertex, inverted-order
        // endpoints — everything the format must preserve verbatim.
        let mut b = crate::builder::GraphBuilder::with_vertices(7);
        b.extend_edges([(0, 1), (1, 0), (5, 2), (2, 2), (3, 1), (1, 3)]);
        let g = b.build().unwrap();
        let path = temp_path("roundtrip.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        assert_eq!(csr.num_vertices(), 7);
        assert_eq!(csr.num_edges(), 6);
        assert_graphs_identical(&g, &csr.to_graph());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sections_match_in_memory_csr() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)]);
        let path = temp_path("sections.ecsr");
        write_csr_file(&g, &path).unwrap();
        let file = CsrFile::open(&path).unwrap();
        let mem = Csr::from_graph(&g);
        for v in g.vertices() {
            assert_eq!(file.degree(v), mem.degree(v));
            let lo = file.offsets()[v.index()] as usize;
            let hi = file.offsets()[v.index() + 1] as usize;
            let (targets, edges) = mem.neighbors(v);
            assert_eq!(
                &file.targets()[lo..hi],
                targets.iter().map(|t| t.0).collect::<Vec<_>>().as_slice()
            );
            assert_eq!(
                &file.edge_ids()[lo..hi],
                edges.iter().map(|e| e.0).collect::<Vec<_>>().as_slice()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::empty(4);
        let path = temp_path("empty.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        assert_eq!(csr.num_vertices(), 4);
        assert_eq!(csr.num_edges(), 0);
        assert!(csr.first_odd_vertex().is_none());
        assert_graphs_identical(&g, &csr.to_graph());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn first_odd_vertex_reads_offsets_only() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]); // v0 and v2 odd
        let path = temp_path("odd.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        assert_eq!(csr.first_odd_vertex(), Some((VertexId(0), 1)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partitioned_matches_from_assignment() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 1)]);
        let path = temp_path("partitioned.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        let a = PartitionAssignment::from_labels(vec![0, 0, 1, 1, 1], 2).unwrap();
        let from_file = csr.partitioned(&a).unwrap();
        let from_graph = PartitionedGraph::from_assignment(&g, &a).unwrap();
        assert_eq!(from_file.num_partitions(), from_graph.num_partitions());
        assert_eq!(from_file.cut_edges(), from_graph.cut_edges());
        assert_eq!(from_file.num_edges(), from_graph.num_edges());
        for (pf, pg) in from_file.partitions().iter().zip(from_graph.partitions()) {
            assert_eq!(pf.id, pg.id);
            assert_eq!(pf.internal, pg.internal);
            assert_eq!(pf.boundary, pg.boundary);
            assert_eq!(pf.local_edges, pg.local_edges);
            assert_eq!(pf.remote_edges, pg.remote_edges);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partitioned_rejects_short_assignment() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let path = temp_path("short_assignment.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        let a = PartitionAssignment::from_labels(vec![0], 1).unwrap();
        assert!(matches!(csr.partitioned(&a), Err(GraphError::IncompleteAssignment { .. })));
        std::fs::remove_file(&path).ok();
    }

    // --- Corrupt-file cases: each must fail with its typed error. ----------

    fn written(name: &str) -> (PathBuf, Vec<u8>) {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let path = temp_path(name);
        write_csr_file(&g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        (path, bytes)
    }

    fn open_err(path: &PathBuf, bytes: &[u8]) -> CsrFileError {
        std::fs::write(path, bytes).unwrap();
        match CsrFile::open(path) {
            Err(GraphError::CsrFormat(e)) => {
                std::fs::remove_file(path).ok();
                e
            }
            other => panic!("expected CsrFormat error, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_typed() {
        let (path, mut bytes) = written("bad_magic.ecsr");
        bytes[0] = b'X';
        assert!(matches!(open_err(&path, &bytes), CsrFileError::BadMagic { .. }));
    }

    #[test]
    fn text_file_is_bad_magic_not_a_panic() {
        let path = temp_path("textfile.ecsr");
        assert!(matches!(
            open_err(&path, b"0 1\n1 2\n2 0\n"),
            CsrFileError::BadMagic { .. }
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let (path, mut bytes) = written("bad_version.ecsr");
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            open_err(&path, &bytes),
            CsrFileError::UnsupportedVersion { found: 99, supported: VERSION }
        );
    }

    #[test]
    fn foreign_endianness_is_typed() {
        let (path, mut bytes) = written("bad_endian.ecsr");
        bytes[12..16].copy_from_slice(&ENDIAN_TAG.to_be_bytes());
        assert_eq!(
            open_err(&path, &bytes),
            CsrFileError::ForeignEndianness { tag: 0x0403_0201 }
        );
    }

    #[test]
    fn truncated_header_is_typed() {
        let (path, bytes) = written("trunc_header.ecsr");
        assert!(matches!(
            open_err(&path, &bytes[..40]),
            CsrFileError::Truncated { what: "header", .. }
        ));
    }

    #[test]
    fn truncated_section_is_typed() {
        let (path, bytes) = written("trunc_section.ecsr");
        // Cut the file mid-way through the endpoints section.
        assert!(matches!(
            open_err(&path, &bytes[..bytes.len() - 8]),
            CsrFileError::Truncated { what: "endpoints", .. }
        ));
    }

    #[test]
    fn flipped_payload_bit_is_a_checksum_mismatch() {
        let (path, mut bytes) = written("bitflip.ecsr");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(open_err(&path, &bytes), CsrFileError::ChecksumMismatch { .. }));
    }

    #[test]
    fn misaligned_section_is_typed() {
        let (path, mut bytes) = written("misaligned.ecsr");
        bytes[32..40].copy_from_slice(&81u64.to_le_bytes());
        assert_eq!(
            open_err(&path, &bytes),
            CsrFileError::Misaligned { what: "offsets", offset: 81 }
        );
    }

    #[test]
    fn structural_violation_is_typed() {
        let (path, mut bytes) = written("bad_structure.ecsr");
        // Corrupt offsets[0] (first word of the offsets section at byte 80)
        // and re-stamp the checksum so the structural check is what fires.
        bytes[80..88].copy_from_slice(&7u64.to_le_bytes());
        let mut hash = Fnv1a::new();
        let words: Vec<u64> = bytes[HEADER_BYTES as usize..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        hash.update_words(&words);
        let checksum = hash.finish();
        bytes[64..72].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(open_err(&path, &bytes), CsrFileError::Invalid { .. }));
    }

    #[test]
    fn endpoints_disagreeing_with_offsets_are_typed() {
        let (path, mut bytes) = written("endpoint_mismatch.ecsr");
        // Rewrite edge 0's endpoints from (0, 1) to (1, 1): every id stays in
        // range and the checksum is re-stamped, but v0's degree under the
        // endpoints section no longer matches its offsets range.
        bytes[0xd0..0xd8].copy_from_slice(&1u64.to_le_bytes());
        let mut hash = Fnv1a::new();
        let words: Vec<u64> = bytes[HEADER_BYTES as usize..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        hash.update_words(&words);
        bytes[64..72].copy_from_slice(&hash.finish().to_le_bytes());
        match open_err(&path, &bytes) {
            CsrFileError::Invalid { message } => {
                assert!(message.contains("degree"), "unexpected message {message}")
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn open_trusted_skips_payload_validation() {
        let (path, mut bytes) = written("trusted.ecsr");
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // Frame checks still run; payload damage goes unnoticed by design.
        let csr = CsrFile::open_trusted(&path).unwrap();
        assert_eq!(csr.num_edges(), 3);
        assert!(matches!(
            CsrFile::open(&path),
            Err(GraphError::CsrFormat(CsrFileError::ChecksumMismatch { .. }))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        assert!(matches!(
            CsrFile::open("/nonexistent/euler/graph.ecsr"),
            Err(GraphError::Io(_))
        ));
    }

    #[test]
    fn error_displays_name_the_problem() {
        let e = CsrFileError::UnsupportedVersion { found: 9, supported: 1 };
        assert!(e.to_string().contains("version 9"));
        let e = CsrFileError::Truncated { what: "targets", needed: 100, actual: 50 };
        assert!(e.to_string().contains("targets"));
        let e = CsrFileError::ChecksumMismatch { expected: 1, actual: 2 };
        assert!(e.to_string().contains("checksum"));
        let e = CsrFileError::Misaligned { what: "offsets", offset: 81 };
        assert!(e.to_string().contains("81"));
        let e: GraphError = CsrFileError::BadMagic { found: [0; 8] }.into();
        assert!(e.to_string().contains("magic"));
    }
}
