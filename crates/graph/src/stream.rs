//! Chunked edge streams — the bounded-memory view of a graph's edges.
//!
//! The W-streaming line of Euler-tour work (Glazik et al.) and the StrSort
//! external-memory line (Kliemann et al.) both observe that partitioning and
//! tour construction consume *edges in an order*, not a resident graph. The
//! [`EdgeStream`] trait is that observation as an interface: a producer
//! pushes the graph's (half-)edges through a sink in bounded-size batches,
//! declaring the [`StreamOrder`] it can honour, and a consumer (such as a
//! [`euler-partition` streaming partitioner]) keeps only its own
//! bounded state — never the edges themselves.
//!
//! Three producers ship, one per [`crate::GraphSource`]:
//!
//! * [`GraphEdgeStream`] walks a resident [`Graph`]'s adjacency — the
//!   vertex-grouped order, used to prove streaming consumers identical to
//!   their whole-graph counterparts.
//! * [`CsrFileEdgeStream`] walks the mapped offsets/targets sections of a
//!   binary `.ecsr` [`CsrFile`] — the same vertex-grouped order, straight
//!   off the file, so a partitioner can run without any [`Graph`] in memory.
//! * [`crate::EdgeListFileSource`] streams a plain-text edge list in file
//!   (edge-id) order via [`crate::source::EdgeListEdgeStream`].
//!
//! [`euler-partition` streaming partitioner]: crate::GraphSource::edge_stream

use crate::csr_file::CsrFile;
use crate::error::GraphError;
use crate::graph::Graph;

/// The order in which an [`EdgeStream`] delivers its entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOrder {
    /// Half-edges grouped by source vertex, sources ascending: every
    /// undirected edge `{u, v}` appears twice — once as `(u, v)` inside `u`'s
    /// group and once as `(v, u)` inside `v`'s group — and a self-loop
    /// appears twice in its vertex's group, exactly mirroring
    /// [`Graph::neighbors`]. Vertices without edges simply have no group.
    VertexGrouped,
    /// One entry `(u, v)` per undirected edge, ascending by edge id
    /// (insertion/file order).
    EdgeIdOrder,
}

impl std::fmt::Display for StreamOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamOrder::VertexGrouped => write!(f, "vertex-grouped half-edges"),
            StreamOrder::EdgeIdOrder => write!(f, "edge-id-ordered edges"),
        }
    }
}

/// Counts established by one full pass of an [`EdgeStream`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamSummary {
    /// Vertex count of the streamed graph — for producers that discover it
    /// (text parses), the same count the equivalent [`Graph`] build would
    /// have produced (largest id seen plus one, or a declared header count
    /// if larger).
    pub num_vertices: u64,
    /// Entries delivered: `2m` for [`StreamOrder::VertexGrouped`], `m` for
    /// [`StreamOrder::EdgeIdOrder`].
    pub entries: u64,
}

/// Default number of `(u64, u64)` entries per delivered batch (1 MiB).
pub const DEFAULT_BATCH_ENTRIES: usize = 64 * 1024;

/// The sink an [`EdgeStream`] delivers its batches to.
pub type EdgeBatchSink<'a> = dyn FnMut(&[(u64, u64)]) + 'a;

/// The sink an id-carrying stream pass delivers its batches to: entries are
/// `(edge_id, u, v)`, so a consumer that must tie each entry back to the
/// graph's stable [`crate::EdgeId`]s (the W-streaming tour builder) can do so
/// without a resident graph.
pub type IdEdgeBatchSink<'a> = dyn FnMut(&[(u64, u64, u64)]) + 'a;

/// A bounded-memory producer of a graph's edges.
///
/// One call to [`stream`](EdgeStream::stream) delivers every entry, in the
/// declared [`order`](EdgeStream::order), through the sink in bounded-size
/// batches; the producer holds at most one batch (plus any read chunk) in
/// flight. Streams are restartable: every `stream` call begins a fresh pass.
pub trait EdgeStream {
    /// The order entries are delivered in.
    fn order(&self) -> StreamOrder;

    /// The vertex count, when it is known *before* streaming (resident
    /// graphs and CSR files know it; chunked text parses discover it and
    /// return `None` here, reporting it in the [`StreamSummary`] instead).
    fn num_vertices(&self) -> Option<u64>;

    /// Streams every entry through `sink` in bounded batches.
    ///
    /// # Errors
    /// Producer-side failures only (I/O, parse); in-memory producers never
    /// fail.
    fn stream(&mut self, sink: &mut EdgeBatchSink<'_>) -> Result<StreamSummary, GraphError>;

    /// Streams every entry as `(edge_id, u, v)` through `sink` in bounded
    /// batches — the feed for consumers that must name each edge by its
    /// stable [`crate::EdgeId`] (the W-streaming tour builder names edges in
    /// the circuit it emits).
    ///
    /// For [`StreamOrder::EdgeIdOrder`] producers the ids are the stream
    /// positions by definition, so the default implementation wraps
    /// [`stream`](EdgeStream::stream) and counts. Vertex-grouped producers
    /// deliver each undirected edge twice and must override this to attach
    /// the true id to both half-edges; the default refuses with
    /// [`GraphError::UnsupportedStream`] rather than fabricate ids.
    ///
    /// # Errors
    /// Producer-side failures, plus [`GraphError::UnsupportedStream`] for
    /// vertex-grouped producers without an override.
    fn stream_with_ids(
        &mut self,
        sink: &mut IdEdgeBatchSink<'_>,
    ) -> Result<StreamSummary, GraphError> {
        match self.order() {
            StreamOrder::EdgeIdOrder => {
                let mut next_id = 0u64;
                let mut scratch: Vec<(u64, u64, u64)> = Vec::new();
                self.stream(&mut |batch| {
                    scratch.clear();
                    scratch.reserve(batch.len());
                    for &(u, v) in batch {
                        scratch.push((next_id, u, v));
                        next_id += 1;
                    }
                    sink(&scratch);
                })
            }
            StreamOrder::VertexGrouped => Err(GraphError::UnsupportedStream {
                consumer: "stream_with_ids".to_string(),
                message: "vertex-grouped producer has no edge-id override; \
                          ids cannot be inferred from half-edge positions"
                    .to_string(),
            }),
        }
    }
}

/// Vertex-grouped stream over a resident [`Graph`]'s adjacency.
///
/// This is the adapter that lets a whole-graph
/// `Partitioner::partition(&Graph)` call reuse its streaming core — the
/// entries come out in exactly the order [`CsrFileEdgeStream`] produces for
/// the same graph packed to `.ecsr`, so the two paths yield identical
/// assignments by construction.
#[derive(Debug)]
pub struct GraphEdgeStream<'a> {
    g: &'a Graph,
    batch_entries: usize,
}

impl<'a> GraphEdgeStream<'a> {
    /// A stream over `g`'s adjacency.
    pub fn new(g: &'a Graph) -> Self {
        GraphEdgeStream { g, batch_entries: DEFAULT_BATCH_ENTRIES }
    }

    /// Sets the batch size in entries (minimum 1; useful in tests to force
    /// group-spanning batch boundaries).
    pub fn with_batch_entries(mut self, entries: usize) -> Self {
        self.batch_entries = entries.max(1);
        self
    }
}

impl EdgeStream for GraphEdgeStream<'_> {
    fn order(&self) -> StreamOrder {
        StreamOrder::VertexGrouped
    }

    fn num_vertices(&self) -> Option<u64> {
        Some(self.g.num_vertices())
    }

    fn stream(&mut self, sink: &mut EdgeBatchSink<'_>) -> Result<StreamSummary, GraphError> {
        let mut batch = Vec::with_capacity(self.batch_entries);
        let mut entries = 0u64;
        for v in self.g.vertices() {
            for &(nbr, _) in self.g.neighbors(v) {
                batch.push((v.0, nbr.0));
                entries += 1;
                if batch.len() == self.batch_entries {
                    sink(&batch);
                    batch.clear();
                }
            }
        }
        if !batch.is_empty() {
            sink(&batch);
        }
        Ok(StreamSummary { num_vertices: self.g.num_vertices(), entries })
    }

    fn stream_with_ids(
        &mut self,
        sink: &mut IdEdgeBatchSink<'_>,
    ) -> Result<StreamSummary, GraphError> {
        let mut batch = Vec::with_capacity(self.batch_entries);
        let mut entries = 0u64;
        for v in self.g.vertices() {
            for &(nbr, e) in self.g.neighbors(v) {
                batch.push((e.0, v.0, nbr.0));
                entries += 1;
                if batch.len() == self.batch_entries {
                    sink(&batch);
                    batch.clear();
                }
            }
        }
        if !batch.is_empty() {
            sink(&batch);
        }
        Ok(StreamSummary { num_vertices: self.g.num_vertices(), entries })
    }
}

/// Vertex-grouped stream over the mapped offsets/targets sections of a
/// [`CsrFile`] — the zero-`Graph` feed for streaming partitioners.
///
/// Pages of the mapped sections fault in as the pass advances and are free
/// to be evicted behind it; nothing beyond the current batch is retained.
#[derive(Debug)]
pub struct CsrFileEdgeStream<'a> {
    csr: &'a CsrFile,
    batch_entries: usize,
}

impl<'a> CsrFileEdgeStream<'a> {
    /// A stream over the mapped CSR adjacency of `csr`.
    pub fn new(csr: &'a CsrFile) -> Self {
        CsrFileEdgeStream { csr, batch_entries: DEFAULT_BATCH_ENTRIES }
    }

    /// Sets the batch size in entries (minimum 1).
    pub fn with_batch_entries(mut self, entries: usize) -> Self {
        self.batch_entries = entries.max(1);
        self
    }
}

impl EdgeStream for CsrFileEdgeStream<'_> {
    fn order(&self) -> StreamOrder {
        StreamOrder::VertexGrouped
    }

    fn num_vertices(&self) -> Option<u64> {
        Some(self.csr.num_vertices())
    }

    fn stream(&mut self, sink: &mut EdgeBatchSink<'_>) -> Result<StreamSummary, GraphError> {
        let offsets = self.csr.offsets();
        let targets = self.csr.targets();
        let mut batch = Vec::with_capacity(self.batch_entries);
        for v in 0..self.csr.num_vertices() as usize {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            for &t in &targets[lo..hi] {
                batch.push((v as u64, t));
                if batch.len() == self.batch_entries {
                    sink(&batch);
                    batch.clear();
                }
            }
        }
        if !batch.is_empty() {
            sink(&batch);
        }
        Ok(StreamSummary {
            num_vertices: self.csr.num_vertices(),
            entries: 2 * self.csr.num_edges(),
        })
    }

    fn stream_with_ids(
        &mut self,
        sink: &mut IdEdgeBatchSink<'_>,
    ) -> Result<StreamSummary, GraphError> {
        let offsets = self.csr.offsets();
        let targets = self.csr.targets();
        let edge_ids = self.csr.edge_ids();
        let mut batch = Vec::with_capacity(self.batch_entries);
        for v in 0..self.csr.num_vertices() as usize {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            for slot in lo..hi {
                batch.push((edge_ids[slot], v as u64, targets[slot]));
                if batch.len() == self.batch_entries {
                    sink(&batch);
                    batch.clear();
                }
            }
        }
        if !batch.is_empty() {
            sink(&batch);
        }
        Ok(StreamSummary {
            num_vertices: self.csr.num_vertices(),
            entries: 2 * self.csr.num_edges(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{graph_from_edges, GraphBuilder};
    use crate::csr_file::write_csr_file;

    fn collect(stream: &mut dyn EdgeStream) -> (Vec<(u64, u64)>, StreamSummary) {
        let mut all = Vec::new();
        let summary = stream.stream(&mut |batch| all.extend_from_slice(batch)).unwrap();
        (all, summary)
    }

    #[test]
    fn graph_stream_mirrors_adjacency_for_every_batch_size() {
        let mut b = GraphBuilder::with_vertices(6);
        b.extend_edges([(0, 1), (1, 0), (4, 2), (2, 2)]); // parallel + self-loop + isolated
        let g = b.build().unwrap();
        let expected: Vec<(u64, u64)> = g
            .vertices()
            .flat_map(|v| g.neighbors(v).iter().map(move |&(n, _)| (v.0, n.0)))
            .collect();
        for batch in [1usize, 2, 3, 1024] {
            let mut s = GraphEdgeStream::new(&g).with_batch_entries(batch);
            assert_eq!(s.order(), StreamOrder::VertexGrouped);
            assert_eq!(s.num_vertices(), Some(6));
            let (all, summary) = collect(&mut s);
            assert_eq!(all, expected, "batch {batch}");
            assert_eq!(summary, StreamSummary { num_vertices: 6, entries: 8 });
        }
    }

    #[test]
    fn csr_stream_is_bit_identical_to_the_graph_stream() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2), (1, 1)]);
        let path = std::env::temp_dir().join("euler_graph_stream_test.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        let (from_graph, gs) = collect(&mut GraphEdgeStream::new(&g));
        let (from_csr, cs) = collect(&mut CsrFileEdgeStream::new(&csr).with_batch_entries(3));
        assert_eq!(from_graph, from_csr);
        assert_eq!(gs, cs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streams_are_restartable() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let mut s = GraphEdgeStream::new(&g);
        let (first, _) = collect(&mut s);
        let (second, _) = collect(&mut s);
        assert_eq!(first, second);
    }

    #[test]
    fn empty_graph_streams_nothing() {
        let g = Graph::empty(3);
        let (all, summary) = collect(&mut GraphEdgeStream::new(&g));
        assert!(all.is_empty());
        assert_eq!(summary, StreamSummary { num_vertices: 3, entries: 0 });
    }

    #[test]
    fn order_displays_name_the_shape() {
        assert!(StreamOrder::VertexGrouped.to_string().contains("vertex"));
        assert!(StreamOrder::EdgeIdOrder.to_string().contains("edge-id"));
    }

    fn collect_ids(stream: &mut dyn EdgeStream) -> (Vec<(u64, u64, u64)>, StreamSummary) {
        let mut all = Vec::new();
        let summary = stream.stream_with_ids(&mut |batch| all.extend_from_slice(batch)).unwrap();
        (all, summary)
    }

    #[test]
    fn graph_id_stream_attaches_stable_edge_ids_to_both_half_edges() {
        let mut b = GraphBuilder::with_vertices(5);
        b.extend_edges([(0, 1), (1, 0), (2, 2), (3, 4)]); // parallel + self-loop
        let g = b.build().unwrap();
        for batch in [1usize, 3, 1024] {
            let mut s = GraphEdgeStream::new(&g).with_batch_entries(batch);
            let (all, summary) = collect_ids(&mut s);
            assert_eq!(summary.entries, 8, "batch {batch}");
            assert_eq!(all.len(), 8);
            // Every entry's id resolves to the entry's own endpoints.
            for &(e, u, v) in &all {
                let (a, b) = g.endpoints(crate::EdgeId(e));
                assert!((a.0, b.0) == (u, v) || (a.0, b.0) == (v, u));
            }
            // Each edge id appears exactly twice (self-loops twice in one group).
            let mut counts = vec![0u32; g.num_edges() as usize];
            for &(e, _, _) in &all {
                counts[e as usize] += 1;
            }
            assert!(counts.iter().all(|&c| c == 2));
        }
    }

    #[test]
    fn csr_id_stream_is_bit_identical_to_the_graph_id_stream() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2), (1, 1)]);
        let path = std::env::temp_dir().join("euler_graph_stream_ids_test.ecsr");
        write_csr_file(&g, &path).unwrap();
        let csr = CsrFile::open(&path).unwrap();
        let (from_graph, gs) = collect_ids(&mut GraphEdgeStream::new(&g));
        let (from_csr, cs) =
            collect_ids(&mut CsrFileEdgeStream::new(&csr).with_batch_entries(3));
        assert_eq!(from_graph, from_csr);
        assert_eq!(gs, cs);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_id_order_default_counts_positions_as_ids() {
        // A hand-rolled EdgeIdOrder producer exercises the trait default.
        struct Listed(Vec<(u64, u64)>);
        impl EdgeStream for Listed {
            fn order(&self) -> StreamOrder {
                StreamOrder::EdgeIdOrder
            }
            fn num_vertices(&self) -> Option<u64> {
                None
            }
            fn stream(
                &mut self,
                sink: &mut EdgeBatchSink<'_>,
            ) -> Result<StreamSummary, GraphError> {
                for chunk in self.0.chunks(2) {
                    sink(chunk);
                }
                Ok(StreamSummary { num_vertices: 3, entries: self.0.len() as u64 })
            }
        }
        let mut s = Listed(vec![(0, 1), (1, 2), (2, 0)]);
        let (all, summary) = collect_ids(&mut s);
        assert_eq!(all, vec![(0, 0, 1), (1, 1, 2), (2, 2, 0)]);
        assert_eq!(summary.entries, 3);
    }

    #[test]
    fn vertex_grouped_default_refuses_id_streaming() {
        struct Grouped;
        impl EdgeStream for Grouped {
            fn order(&self) -> StreamOrder {
                StreamOrder::VertexGrouped
            }
            fn num_vertices(&self) -> Option<u64> {
                Some(0)
            }
            fn stream(
                &mut self,
                _sink: &mut EdgeBatchSink<'_>,
            ) -> Result<StreamSummary, GraphError> {
                Ok(StreamSummary { num_vertices: 0, entries: 0 })
            }
        }
        let err = Grouped.stream_with_ids(&mut |_| {}).unwrap_err();
        assert!(matches!(err, GraphError::UnsupportedStream { .. }));
    }
}
