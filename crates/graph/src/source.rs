//! Graph input sources — the load seam of the Euler pipeline.
//!
//! The W-streaming line of Euler-tour work (Glazik et al.; Kliemann et al.)
//! observes that the algorithm consumes edges, not a resident graph: what
//! matters is the order edges are fed in, not how they are stored. The
//! [`GraphSource`] trait captures that seam. Three implementations ship:
//! [`InMemorySource`] hands over a graph that already lives in memory,
//! [`EdgeListFileSource`] streams a plain-text edge list from disk in
//! bounded-size chunks, and [`MmapCsrSource`] memory-maps a binary `.ecsr`
//! CSR file ([`crate::csr_file`], spec in [`crate::format_spec`]) whose
//! sections the pipeline can slice into partitions without ever
//! materialising a [`Graph`].

use crate::csr_file::CsrFile;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::io::{EdgeLineScanner, EdgeListParser};
use crate::stream::{
    CsrFileEdgeStream, EdgeBatchSink, EdgeStream, GraphEdgeStream, StreamOrder, StreamSummary,
    DEFAULT_BATCH_ENTRIES,
};
use std::io::Read;
use std::path::{Path, PathBuf};

/// A provider of input graphs for the Euler pipeline.
///
/// A source is asked for the graph once per pipeline run via
/// [`load`](GraphSource::load). Sources whose graph already resides in memory
/// can additionally expose it through [`resident`](GraphSource::resident), so
/// the pipeline borrows it instead of copying; sources backed by a mapped
/// CSR file expose the raw arrays through [`csr`](GraphSource::csr), so the
/// pipeline partitions straight off the file.
///
/// ```
/// use euler_graph::{builder::graph_from_edges, GraphSource, InMemorySource};
///
/// let source = InMemorySource::new(graph_from_edges(&[(0, 1), (1, 0)]));
/// // `load` always works; `resident` is the no-copy fast path.
/// assert_eq!(source.load().unwrap().num_edges(), 2);
/// assert_eq!(source.resident().unwrap().num_edges(), 2);
/// assert!(source.csr().is_none()); // not file-backed
/// ```
pub trait GraphSource {
    /// Human-readable description of the source, used in stage reports.
    fn name(&self) -> String;

    /// Produces the graph. Called once per pipeline run.
    fn load(&self) -> Result<Graph, GraphError>;

    /// The graph, if it is already resident in memory — the zero-copy fast
    /// path. Sources that materialise their graph on demand return `None`
    /// (the default) and are asked to [`load`](GraphSource::load) instead.
    fn resident(&self) -> Option<&Graph> {
        None
    }

    /// The source's memory-mapped CSR view, if it has one. The pipeline uses
    /// it to run degree checks and slice the partition-centric view directly
    /// from the mapped sections ([`CsrFile::partitioned`]) instead of loading
    /// a [`Graph`] first. Default: `None`.
    fn csr(&self) -> Option<&CsrFile> {
        None
    }

    /// A chunked [`EdgeStream`] over this source's edges, if it can produce
    /// one — the feed for streaming partitioners, which consume edge batches
    /// in bounded memory instead of a resident [`Graph`]. Every shipped
    /// source streams; custom sources default to `None` (the pipeline then
    /// falls back to [`load`](GraphSource::load)).
    fn edge_stream(&self) -> Option<Box<dyn EdgeStream + '_>> {
        None
    }
}

/// A source wrapping a graph that is already in memory.
#[derive(Clone, Debug)]
pub struct InMemorySource {
    graph: Graph,
}

impl InMemorySource {
    /// Wraps `graph`.
    pub fn new(graph: Graph) -> Self {
        InMemorySource { graph }
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

impl From<Graph> for InMemorySource {
    fn from(graph: Graph) -> Self {
        InMemorySource::new(graph)
    }
}

impl GraphSource for InMemorySource {
    fn name(&self) -> String {
        format!(
            "in-memory ({} vertices, {} edges)",
            self.graph.num_vertices(),
            self.graph.num_edges()
        )
    }

    fn load(&self) -> Result<Graph, GraphError> {
        Ok(self.graph.clone())
    }

    fn resident(&self) -> Option<&Graph> {
        Some(&self.graph)
    }

    fn edge_stream(&self) -> Option<Box<dyn EdgeStream + '_>> {
        Some(Box::new(GraphEdgeStream::new(&self.graph)))
    }
}

/// A source reading a plain-text edge list (the [`crate::io`] format) from a
/// file in bounded-size chunks.
///
/// Unlike [`crate::io::read_edge_list_file`], which goes through a
/// line-oriented `BufRead`, this source reads the file `chunk_bytes` at a
/// time and carries partial trailing lines across chunk boundaries, so the
/// read path holds at most one chunk plus one line in flight. Parse errors
/// report the exact 1-based line number even when the offending line spans
/// two chunks.
///
/// ```
/// use euler_graph::{EdgeListFileSource, GraphSource};
///
/// let path = std::env::temp_dir().join("doctest_source.el");
/// std::fs::write(&path, "# a square\n0 1\n1 2\n2 3\n3 0\n").unwrap();
/// let source = EdgeListFileSource::new(&path).with_chunk_bytes(4);
/// let graph = source.load().unwrap();
/// assert_eq!(graph.num_vertices(), 4);
/// assert_eq!(graph.num_edges(), 4);
/// std::fs::remove_file(&path).ok();
/// ```
#[derive(Clone, Debug)]
pub struct EdgeListFileSource {
    path: PathBuf,
    chunk_bytes: usize,
}

impl EdgeListFileSource {
    /// Default read-chunk size (1 MiB).
    pub const DEFAULT_CHUNK_BYTES: usize = 1 << 20;

    /// A source for the edge-list file at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        EdgeListFileSource { path: path.into(), chunk_bytes: Self::DEFAULT_CHUNK_BYTES }
    }

    /// Sets the read-chunk size in bytes (minimum 1; mainly useful for tests
    /// that force lines to span chunk boundaries).
    pub fn with_chunk_bytes(mut self, chunk_bytes: usize) -> Self {
        self.chunk_bytes = chunk_bytes.max(1);
        self
    }

    /// The file path this source reads.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Streams `reader` through the shared [`EdgeListParser`] in
    /// `chunk_bytes`-sized reads.
    fn parse_chunked<R: Read>(&self, reader: R) -> Result<Graph, GraphError> {
        let mut parser = EdgeListParser::new();
        for_each_chunked_line(reader, self.chunk_bytes, &mut |bytes| {
            parser.feed_line(bytes_as_line(bytes, parser.next_line())?)
        })?;
        parser.finish()
    }

    /// A chunked [`EdgeStream`] over this file, in file (edge-id) order.
    pub fn stream(&self) -> EdgeListEdgeStream {
        EdgeListEdgeStream {
            path: self.path.clone(),
            chunk_bytes: self.chunk_bytes,
            batch_entries: DEFAULT_BATCH_ENTRIES,
        }
    }
}

/// Feeds `reader` to `f` one line at a time (without terminators), reading
/// `chunk_bytes` at a time and carrying partial trailing lines across chunk
/// boundaries — the shared read loop of the graph-building and edge-stream
/// paths over edge-list files.
fn for_each_chunked_line<R: Read>(
    mut reader: R,
    chunk_bytes: usize,
    f: &mut dyn FnMut(&[u8]) -> Result<(), GraphError>,
) -> Result<(), GraphError> {
    let mut buf = vec![0u8; chunk_bytes];
    // Bytes of a line whose terminator has not been seen yet.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let n = reader.read(&mut buf)?;
        if n == 0 {
            break;
        }
        let mut rest = &buf[..n];
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            if carry.is_empty() {
                f(&rest[..pos])?;
            } else {
                carry.extend_from_slice(&rest[..pos]);
                f(&carry)?;
                carry.clear();
            }
            rest = &rest[pos + 1..];
        }
        carry.extend_from_slice(rest);
    }
    if !carry.is_empty() {
        // Final line without a terminating newline.
        f(&carry)?;
    }
    Ok(())
}

/// Decodes one line's bytes as UTF-8, attributing failures to `line`.
fn bytes_as_line(bytes: &[u8], line: usize) -> Result<&str, GraphError> {
    std::str::from_utf8(bytes)
        .map_err(|e| GraphError::Parse { line, message: format!("invalid UTF-8: {e}") })
}

/// Chunked [`EdgeStream`] over a plain-text edge-list file, in file (edge-id)
/// order — no [`Graph`], no [`crate::GraphBuilder`], just parsed `(u, v)`
/// batches with the same exact-line-number error attribution as the load
/// path.
///
/// The vertex count is discovered by the pass (largest id seen plus one, or
/// the declared `# vertices N edges M` header if larger), so
/// [`num_vertices`](EdgeStream::num_vertices) is `None` up front; consumers
/// that need the count before placing vertices (vertex-grouped streaming
/// partitioners) use the CSR stream instead.
#[derive(Clone, Debug)]
pub struct EdgeListEdgeStream {
    path: PathBuf,
    chunk_bytes: usize,
    batch_entries: usize,
}

impl EdgeListEdgeStream {
    /// Sets the batch size in entries (minimum 1).
    pub fn with_batch_entries(mut self, entries: usize) -> Self {
        self.batch_entries = entries.max(1);
        self
    }
}

impl EdgeStream for EdgeListEdgeStream {
    fn order(&self) -> StreamOrder {
        StreamOrder::EdgeIdOrder
    }

    fn num_vertices(&self) -> Option<u64> {
        None
    }

    fn stream(&mut self, sink: &mut EdgeBatchSink<'_>) -> Result<StreamSummary, GraphError> {
        let file = std::fs::File::open(&self.path)?;
        let mut scanner = EdgeLineScanner::new();
        let mut batch = Vec::with_capacity(self.batch_entries);
        let mut entries = 0u64;
        for_each_chunked_line(file, self.chunk_bytes, &mut |bytes| {
            let line = bytes_as_line(bytes, scanner.next_line())?;
            if let Some(edge) = scanner.feed_line(line)? {
                batch.push(edge);
                entries += 1;
                if batch.len() == self.batch_entries {
                    sink(&batch);
                    batch.clear();
                }
            }
            Ok(())
        })?;
        if !batch.is_empty() {
            sink(&batch);
        }
        Ok(StreamSummary { num_vertices: scanner.num_vertices(), entries })
    }
}

impl GraphSource for EdgeListFileSource {
    fn name(&self) -> String {
        format!("edge-list file {}", self.path.display())
    }

    fn load(&self) -> Result<Graph, GraphError> {
        let file = std::fs::File::open(&self.path)?;
        self.parse_chunked(file)
    }

    fn edge_stream(&self) -> Option<Box<dyn EdgeStream + '_>> {
        Some(Box::new(self.stream()))
    }
}

/// A source over a memory-mapped binary `.ecsr` CSR file — the zero-copy
/// load path for graphs that do not fit a text-parse-and-build pass.
///
/// Opening the source maps and validates the file once (magic, version,
/// endianness, checksum, structural invariants — see [`crate::format_spec`]);
/// corrupt files fail *here*, with a typed [`GraphError::CsrFormat`], not
/// mid-pipeline. [`load`](GraphSource::load) reconstructs the exact original
/// [`Graph`] from the mapped arrays, and [`csr`](GraphSource::csr) hands the
/// pipeline the raw sections so it can slice partitions without any `Graph`
/// at all.
///
/// ```
/// use euler_graph::{builder::graph_from_edges, write_csr_file};
/// use euler_graph::{GraphSource, MmapCsrSource};
///
/// let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
/// let path = std::env::temp_dir().join("doctest_source.ecsr");
/// write_csr_file(&g, &path).unwrap();
///
/// let source = MmapCsrSource::open(&path).unwrap();
/// assert_eq!(source.csr().unwrap().num_edges(), 3);
/// let reloaded = source.load().unwrap();       // bit-identical reconstruction
/// assert_eq!(reloaded.num_vertices(), g.num_vertices());
/// assert_eq!(reloaded.neighbors(euler_graph::VertexId(0)),
///            g.neighbors(euler_graph::VertexId(0)));
/// std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct MmapCsrSource {
    path: PathBuf,
    csr: CsrFile,
}

impl MmapCsrSource {
    /// Opens and fully validates the `.ecsr` file at `path`
    /// (via [`CsrFile::open`]).
    ///
    /// # Errors
    /// [`GraphError::Io`] on filesystem failures, [`GraphError::CsrFormat`]
    /// on malformed files.
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, GraphError> {
        let path = path.into();
        let csr = CsrFile::open(&path)?;
        Ok(MmapCsrSource { path, csr })
    }

    /// Opens the file with framing checks only — no checksum pass, nothing
    /// beyond the header paged in (via [`CsrFile::open_trusted`]). For large
    /// files from a trusted local producer.
    ///
    /// # Errors
    /// Same as [`open`](Self::open) minus the checksum/structure cases.
    pub fn open_trusted(path: impl Into<PathBuf>) -> Result<Self, GraphError> {
        let path = path.into();
        let csr = CsrFile::open_trusted(&path)?;
        Ok(MmapCsrSource { path, csr })
    }

    /// The file path this source maps.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The mapped CSR view.
    pub fn csr_file(&self) -> &CsrFile {
        &self.csr
    }
}

impl GraphSource for MmapCsrSource {
    fn name(&self) -> String {
        format!(
            "mmap csr file {} ({} vertices, {} edges)",
            self.path.display(),
            self.csr.num_vertices(),
            self.csr.num_edges()
        )
    }

    fn load(&self) -> Result<Graph, GraphError> {
        Ok(self.csr.to_graph())
    }

    fn csr(&self) -> Option<&CsrFile> {
        Some(&self.csr)
    }

    fn edge_stream(&self) -> Option<Box<dyn EdgeStream + '_>> {
        Some(Box::new(CsrFileEdgeStream::new(&self.csr)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::io::{read_edge_list, write_edge_list_file};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("euler_graph_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn in_memory_source_is_resident_and_loads_a_copy() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let src = InMemorySource::new(g.clone());
        assert!(src.name().contains("in-memory"));
        assert_eq!(src.resident().unwrap().num_edges(), 3);
        let loaded = src.load().unwrap();
        assert_eq!(loaded.num_edges(), g.num_edges());
        assert_eq!(loaded.num_vertices(), g.num_vertices());
    }

    #[test]
    fn file_source_matches_reader_parse_for_every_tiny_chunk_size() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let path = temp_path("chunked.el");
        write_edge_list_file(&g, &path).unwrap();
        let expected = read_edge_list(std::fs::read(&path).unwrap().as_slice()).unwrap();
        // Chunk sizes from 1 byte upward force every possible line split.
        for chunk in [1usize, 2, 3, 5, 7, 16, 4096] {
            let src = EdgeListFileSource::new(&path).with_chunk_bytes(chunk);
            let loaded = src.load().unwrap();
            assert_eq!(loaded.num_vertices(), expected.num_vertices(), "chunk {chunk}");
            assert_eq!(loaded.num_edges(), expected.num_edges(), "chunk {chunk}");
            for v in expected.vertices() {
                assert_eq!(loaded.degree(v), expected.degree(v), "chunk {chunk}");
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_reports_line_numbers_across_chunk_boundaries() {
        let path = temp_path("malformed.el");
        std::fs::write(&path, "# header\n0 1\n1 2\nbad_vertex 3\n").unwrap();
        // 3-byte chunks split "bad_vertex 3" across many reads.
        let src = EdgeListFileSource::new(&path).with_chunk_bytes(3);
        let err = src.load().unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 4);
                assert!(message.contains("bad_vertex"), "unexpected message {message}");
            }
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_handles_missing_trailing_newline() {
        let path = temp_path("no_trailing_newline.el");
        std::fs::write(&path, "0 1\n1 0").unwrap();
        let g = EdgeListFileSource::new(&path).with_chunk_bytes(4).load().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.num_vertices(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_stream_yields_file_order_edges_and_discovers_the_count() {
        let path = temp_path("streamed.el");
        std::fs::write(&path, "# vertices 9 edges 3\n0 1\n% noise\n1 2\n2 0\n").unwrap();
        let src = EdgeListFileSource::new(&path).with_chunk_bytes(3);
        let mut stream = src.edge_stream().expect("file sources stream");
        assert_eq!(stream.order(), crate::stream::StreamOrder::EdgeIdOrder);
        assert_eq!(stream.num_vertices(), None, "text parses discover the count");
        let mut edges = Vec::new();
        let summary = stream.stream(&mut |b| edges.extend_from_slice(b)).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
        // Header count wins over max id + 1; the load path agrees.
        assert_eq!(summary.num_vertices, 9);
        assert_eq!(summary.entries, 3);
        assert_eq!(src.load().unwrap().num_vertices(), 9);
        // Tiny batches only change delivery granularity, not content.
        let mut rebatched = src.stream().with_batch_entries(1);
        let mut again = Vec::new();
        rebatched.stream(&mut |b| again.extend_from_slice(b)).unwrap();
        assert_eq!(again, edges);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_stream_reports_parse_errors_with_line_numbers() {
        let path = temp_path("streamed_bad.el");
        std::fs::write(&path, "0 1\n1 2\nbad 3\n").unwrap();
        let mut stream = EdgeListFileSource::new(&path).with_chunk_bytes(2).stream();
        let err = stream.stream(&mut |_| {}).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("bad"), "unexpected message {message}");
            }
            other => panic!("unexpected error {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let src = EdgeListFileSource::new("/nonexistent/euler/source.el");
        assert!(matches!(src.load(), Err(GraphError::Io(_))));
    }

    #[test]
    fn sources_are_usable_as_trait_objects() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let sources: Vec<Box<dyn GraphSource>> = vec![
            Box::new(InMemorySource::from(g)),
            Box::new(EdgeListFileSource::new("unused.el")),
        ];
        assert!(sources[0].resident().is_some());
        assert!(sources[0].csr().is_none());
        assert!(sources[1].resident().is_none());
        assert!(sources[1].name().contains("unused.el"));
    }

    #[test]
    fn mmap_source_loads_the_exact_graph() {
        let mut b = crate::builder::GraphBuilder::with_vertices(6);
        b.extend_edges([(0, 1), (1, 0), (4, 2), (2, 2)]);
        let g = b.build().unwrap();
        let path = temp_path("mmap_source.ecsr");
        crate::csr_file::write_csr_file(&g, &path).unwrap();
        let src = MmapCsrSource::open(&path).unwrap();
        assert!(src.name().contains("mmap csr"));
        assert!(src.resident().is_none());
        assert_eq!(src.csr().unwrap().num_edges(), 4);
        assert_eq!(src.path(), path.as_path());
        let loaded = src.load().unwrap();
        assert_eq!(loaded.num_vertices(), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(loaded.neighbors(v), g.neighbors(v));
        }
        for (e, u, v) in g.edges() {
            assert_eq!(loaded.endpoints(e), (u, v));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_source_rejects_corrupt_files_at_open() {
        let path = temp_path("mmap_source_corrupt.ecsr");
        std::fs::write(&path, b"not an ecsr file").unwrap();
        assert!(matches!(
            MmapCsrSource::open(&path),
            Err(GraphError::CsrFormat(crate::csr_file::CsrFileError::BadMagic { .. }))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mmap_source_is_a_trait_object_with_a_csr_view() {
        let g = graph_from_edges(&[(0, 1), (1, 0)]);
        let path = temp_path("mmap_source_dyn.ecsr");
        crate::csr_file::write_csr_file(&g, &path).unwrap();
        let src: Box<dyn GraphSource> = Box::new(MmapCsrSource::open_trusted(&path).unwrap());
        assert_eq!(src.csr().unwrap().num_vertices(), 2);
        assert_eq!(src.load().unwrap().num_edges(), 2);
        std::fs::remove_file(&path).ok();
    }
}
