//! Graph property queries: degrees, Eulerian-ness, connectivity.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::VertexId;

/// Returns the vertices with odd degree.
///
/// By the handshaking lemma the returned list always has even length.
pub fn odd_vertices(g: &Graph) -> Vec<VertexId> {
    g.vertices().filter(|&v| g.degree(v) % 2 == 1).collect()
}

/// First vertex with odd degree, with its degree, if any — the Eulerian
/// degree pre-check in the shape [`crate::CsrFile::first_odd_vertex`] also
/// produces, so both input paths share one check.
pub fn first_odd_vertex(g: &Graph) -> Option<(VertexId, u64)> {
    g.vertices().map(|v| (v, g.degree(v))).find(|&(_, d)| d % 2 == 1)
}

/// Checks whether every vertex of the graph has even degree.
///
/// This is the degree half of Euler's theorem; combined with
/// [`is_connected_on_edges`] it characterises graphs with an Euler circuit.
pub fn all_degrees_even(g: &Graph) -> bool {
    g.vertices().all(|v| g.degree(v).is_multiple_of(2))
}

/// Labels the connected component of every vertex, ignoring edge multiplicity.
///
/// Returns `(labels, count)` where `labels[v]` is a component index in
/// `0..count`. Isolated vertices get their own components.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_vertices() as usize;
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        stack.push(VertexId(start as u64));
        while let Some(v) = stack.pop() {
            for &(nbr, _) in g.neighbors(v) {
                let idx = nbr.index();
                if labels[idx] == u32::MAX {
                    labels[idx] = count;
                    stack.push(nbr);
                }
            }
        }
        count += 1;
    }
    (labels, count as usize)
}

/// True if all *edges* of the graph lie in a single connected component.
///
/// Isolated vertices are ignored: an Euler circuit only needs to traverse
/// every edge, so vertices without edges do not matter (this mirrors the
/// paper's "every edge ... that is part of the connected component").
pub fn is_connected_on_edges(g: &Graph) -> bool {
    non_trivial_components(g) <= 1
}

/// Number of connected components that contain at least one edge.
pub fn non_trivial_components(g: &Graph) -> usize {
    let (labels, count) = connected_components(g);
    let mut has_edge = vec![false; count];
    for (_, u, _) in g.edges() {
        has_edge[labels[u.index()] as usize] = true;
    }
    has_edge.iter().filter(|&&b| b).count()
}

/// Checks that the graph admits an Euler circuit: every vertex has even degree
/// and all edges lie in one connected component.
///
/// # Errors
/// Returns [`GraphError::NotEulerian`] naming an offending odd-degree vertex,
/// or [`GraphError::Disconnected`] with the number of edge-bearing components.
pub fn is_eulerian(g: &Graph) -> Result<(), GraphError> {
    for v in g.vertices() {
        let d = g.degree(v);
        if d % 2 == 1 {
            return Err(GraphError::NotEulerian { vertex: v, degree: d });
        }
    }
    let comps = non_trivial_components(g);
    if comps > 1 {
        return Err(GraphError::Disconnected { components: comps });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn triangle_is_eulerian() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        assert!(all_degrees_even(&g));
        assert!(is_eulerian(&g).is_ok());
        assert!(odd_vertices(&g).is_empty());
    }

    #[test]
    fn path_is_not_eulerian() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        assert!(!all_degrees_even(&g));
        let odd = odd_vertices(&g);
        assert_eq!(odd, vec![VertexId(0), VertexId(2)]);
        assert!(matches!(is_eulerian(&g), Err(GraphError::NotEulerian { .. })));
    }

    #[test]
    fn two_triangles_disconnected() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(all_degrees_even(&g));
        assert_eq!(non_trivial_components(&g), 2);
        assert!(matches!(is_eulerian(&g), Err(GraphError::Disconnected { components: 2 })));
    }

    #[test]
    fn isolated_vertices_do_not_break_eulerian() {
        let mut b = crate::builder::GraphBuilder::with_vertices(10);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0);
        let g = b.build().unwrap();
        assert!(is_eulerian(&g).is_ok());
        assert!(is_connected_on_edges(&g));
    }

    #[test]
    fn component_count_and_labels() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn handshaking_lemma_odd_count_is_even() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert_eq!(odd_vertices(&g).len() % 2, 0);
    }

    #[test]
    fn self_loop_keeps_parity() {
        let g = graph_from_edges(&[(0, 0), (0, 1), (1, 0)]);
        assert!(all_degrees_even(&g));
        assert!(is_eulerian(&g).is_ok());
    }

    #[test]
    fn empty_graph_is_trivially_eulerian() {
        let g = Graph::empty(3);
        assert!(is_eulerian(&g).is_ok());
        assert_eq!(non_trivial_components(&g), 0);
    }
}
