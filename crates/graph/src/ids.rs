//! Strongly-typed identifiers for vertices, edges and partitions.
//!
//! The paper accounts for memory in numbers of 8-byte `Long`s, so vertex and
//! edge identifiers are 64-bit. Partition identifiers are 32-bit since the
//! number of partitions is small (tens to hundreds).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex. Vertices of a [`crate::Graph`] are contiguous
/// `0..num_vertices`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct VertexId(pub u64);

/// Identifier of an undirected edge. Edges of a [`crate::Graph`] are
/// contiguous `0..num_edges`; parallel edges (multi-edges) receive distinct
/// identifiers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct EdgeId(pub u64);

/// Identifier of a partition in a [`crate::PartitionedGraph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub struct PartitionId(pub u32);

impl VertexId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PartitionId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u64> for VertexId {
    fn from(v: u64) -> Self {
        VertexId(v)
    }
}

impl From<usize> for VertexId {
    fn from(v: usize) -> Self {
        VertexId(v as u64)
    }
}

impl From<u64> for EdgeId {
    fn from(v: u64) -> Self {
        EdgeId(v)
    }
}

impl From<usize> for EdgeId {
    fn from(v: usize) -> Self {
        EdgeId(v as u64)
    }
}

impl From<u32> for PartitionId {
    fn from(v: u32) -> Self {
        PartitionId(v)
    }
}

impl From<usize> for PartitionId {
    fn from(v: usize) -> Self {
        PartitionId(v as u32)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Debug for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(42usize);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VertexId(42));
        assert_eq!(format!("{v}"), "v42");
        assert_eq!(format!("{v:?}"), "v42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(7u64);
        assert_eq!(e.index(), 7);
        assert_eq!(format!("{e}"), "e7");
    }

    #[test]
    fn partition_id_roundtrip() {
        let p = PartitionId::from(3usize);
        assert_eq!(p.index(), 3);
        assert_eq!(format!("{p}"), "P3");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(9) > EdgeId(3));
        assert!(PartitionId(0) < PartitionId(1));
    }

    #[test]
    fn ids_are_hashable_defaults() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(VertexId::default());
        s.insert(VertexId(0));
        assert_eq!(s.len(), 1);
    }
}
