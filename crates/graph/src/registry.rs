//! A process-wide registry of opened `.ecsr` graphs, keyed by content
//! checksum.
//!
//! The service layer registers graphs once and runs many requests against
//! them. The key is the file's FNV-1a content checksum
//! ([`CsrFile::checksum`]) rather than its path: two paths holding the same
//! packed graph are *one* registry entry, and a circuit cached against the
//! checksum stays valid wherever the file moves. Registration verifies the
//! checksum (it goes through [`CsrFile::open`]), so a registered graph is
//! known-good; lookups are cheap `Arc` clones and the mapped file is shared
//! by every concurrent run.

use crate::csr_file::CsrFile;
use crate::error::GraphError;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// One registered graph: the opened, checksum-verified [`CsrFile`] plus the
/// identity it is registered under.
#[derive(Debug)]
pub struct RegisteredGraph {
    /// The mapped, verified `.ecsr` file. Shared by every run.
    pub csr: CsrFile,
    /// The file's FNV-1a content checksum — the registry key.
    pub checksum: u64,
    /// The path the graph was registered from (informational; the checksum,
    /// not the path, is the identity).
    pub path: PathBuf,
}

impl RegisteredGraph {
    /// Vertex count of the registered graph.
    pub fn num_vertices(&self) -> u64 {
        self.csr.num_vertices()
    }

    /// Edge count of the registered graph.
    pub fn num_edges(&self) -> u64 {
        self.csr.num_edges()
    }
}

/// Thread-safe map from content checksum to opened graph.
///
/// Registering the same content twice (same or different path) is
/// idempotent: the first mapping wins and is returned again.
#[derive(Debug, Default)]
pub struct GraphRegistry {
    graphs: Mutex<HashMap<u64, Arc<RegisteredGraph>>>,
}

impl GraphRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens and verifies the `.ecsr` file at `path` and registers it under
    /// its content checksum, returning the (possibly pre-existing) entry.
    ///
    /// # Errors
    /// Any [`CsrFile::open`] failure: missing file, malformed header,
    /// checksum mismatch, structural violation.
    pub fn register<P: AsRef<Path>>(&self, path: P) -> Result<Arc<RegisteredGraph>, GraphError> {
        let path = path.as_ref();
        let csr = CsrFile::open(path)?;
        let checksum = csr.checksum();
        let mut graphs = self.graphs.lock().unwrap_or_else(|e| e.into_inner());
        let entry = graphs.entry(checksum).or_insert_with(|| {
            Arc::new(RegisteredGraph { csr, checksum, path: path.to_path_buf() })
        });
        Ok(Arc::clone(entry))
    }

    /// Looks up a registered graph by content checksum.
    pub fn get(&self, checksum: u64) -> Option<Arc<RegisteredGraph>> {
        self.graphs.lock().unwrap_or_else(|e| e.into_inner()).get(&checksum).cloned()
    }

    /// Number of distinct graphs registered.
    pub fn len(&self) -> usize {
        self.graphs.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checksums of every registered graph, in no particular order.
    pub fn checksums(&self) -> Vec<u64> {
        self.graphs.lock().unwrap_or_else(|e| e.into_inner()).keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::csr_file::write_csr_file;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("euler_graph_registry_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn same_content_at_two_paths_is_one_entry() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let a = temp_path("dup_a.ecsr");
        let b = temp_path("dup_b.ecsr");
        write_csr_file(&g, &a).unwrap();
        write_csr_file(&g, &b).unwrap();

        let registry = GraphRegistry::new();
        let ra = registry.register(&a).unwrap();
        let rb = registry.register(&b).unwrap();
        assert_eq!(ra.checksum, rb.checksum);
        assert!(Arc::ptr_eq(&ra, &rb), "same content maps to one shared entry");
        assert_eq!(registry.len(), 1);
        assert_eq!(ra.path, a, "first registration wins");
        assert_eq!(registry.get(ra.checksum).unwrap().num_edges(), 4);
        assert!(registry.get(ra.checksum.wrapping_add(1)).is_none());
    }

    #[test]
    fn distinct_graphs_get_distinct_entries() {
        let g1 = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let g2 = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let p1 = temp_path("g1.ecsr");
        let p2 = temp_path("g2.ecsr");
        write_csr_file(&g1, &p1).unwrap();
        write_csr_file(&g2, &p2).unwrap();

        let registry = GraphRegistry::new();
        let r1 = registry.register(&p1).unwrap();
        let r2 = registry.register(&p2).unwrap();
        assert_ne!(r1.checksum, r2.checksum);
        assert_eq!(registry.len(), 2);
        let mut sums = registry.checksums();
        sums.sort_unstable();
        let mut expect = vec![r1.checksum, r2.checksum];
        expect.sort_unstable();
        assert_eq!(sums, expect);
    }

    #[test]
    fn registering_a_missing_file_errors() {
        let registry = GraphRegistry::new();
        assert!(registry.register("/nonexistent/euler/registry/graph.ecsr").is_err());
        assert!(registry.is_empty());
    }
}
