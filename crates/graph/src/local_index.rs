//! Dense vertex interning: global [`VertexId`] → contiguous `u32` slot.
//!
//! Partition-local kernels (Phase-1 traversal, Phase-3 splicing, degree
//! classification) touch a small, arbitrary subset of the global vertex
//! space. Keeping their per-vertex state in `HashMap<VertexId, _>` pays a
//! hash per edge visit; a [`LocalIndex`] instead assigns every distinct
//! vertex a dense slot in `0..len`, after which all per-vertex state lives in
//! flat `Vec`s indexed by slot — the same layout idiom as [`crate::Csr`] for
//! the global graph.
//!
//! Slots are assigned in ascending `VertexId` order, so an ascending slot
//! scan visits vertices in ascending global order. Deterministic algorithms
//! that pick "the smallest vertex such that …" therefore reduce to a linear
//! slot scan with no ordered-set structure.

use crate::ids::VertexId;
use serde::{Deserialize, Serialize};

/// Slot value in the direct-map table for "vertex not interned".
const NO_SLOT: u32 = u32::MAX;

/// A dense, sorted interning table for a subset of the global vertex space.
///
/// When the interned vertices span a compact range of global ids (the common
/// case: partitions of a contiguously-numbered graph), the index carries a
/// direct-mapped `id - base → slot` table, making [`LocalIndex::slot`] an
/// `O(1)` array load and the build itself a counting pass instead of a sort.
/// Sparse vertex sets fall back to binary search over the sorted slot array.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct LocalIndex {
    /// Distinct vertices, sorted ascending; slot `s` names `verts[s]`.
    verts: Vec<VertexId>,
    /// Direct-map fast path: `(base, table)` with
    /// `table[v - base] = slot_of(v)` (or `NO_SLOT`). Present only when the
    /// id span is at most [`LocalIndex::SPAN_FACTOR`]× the input size.
    lookup: Option<(u64, Vec<u32>)>,
}

/// Recycled allocations of a retired [`LocalIndex`], fed back into
/// [`LocalIndex::from_vertices_reusing`] so repeated index builds (one per
/// merge level in the Phase-1 arena) stop allocating once their capacities
/// have grown to the working-set size.
#[derive(Debug, Default)]
pub struct LocalIndexBufs {
    raw: Vec<VertexId>,
    verts: Vec<VertexId>,
    table: Vec<u32>,
}

impl LocalIndexBufs {
    /// Capacity (in entries) of the recycled vertex buffers — the larger of
    /// the collection and slot arrays. Exposed so arena tests can assert
    /// reuse never shrinks capacity.
    pub fn vertex_capacity(&self) -> usize {
        self.raw.capacity().max(self.verts.capacity())
    }

    /// Capacity (in entries) of the recycled direct-map table.
    pub fn table_capacity(&self) -> usize {
        self.table.capacity()
    }
}

impl LocalIndex {
    /// Maximum id-span-to-input-size ratio for which the direct-map table is
    /// built (bounds its memory at `4 * SPAN_FACTOR` bytes per input vertex).
    const SPAN_FACTOR: u64 = 4;

    /// Builds an index over the distinct vertices of `iter` (duplicates are
    /// fine and collapse to one slot).
    pub fn from_vertices(iter: impl IntoIterator<Item = VertexId>) -> Self {
        Self::from_vertices_reusing(iter, &mut LocalIndexBufs::default())
    }

    /// Like [`from_vertices`](Self::from_vertices), but builds into the
    /// recycled allocations held by `bufs` (see
    /// [`into_bufs`](Self::into_bufs)); `bufs` keeps the collection buffer
    /// for the next build. Capacities only ever grow.
    pub fn from_vertices_reusing(
        iter: impl IntoIterator<Item = VertexId>,
        bufs: &mut LocalIndexBufs,
    ) -> Self {
        let raw = &mut bufs.raw;
        let mut verts = std::mem::take(&mut bufs.verts);
        let mut table = std::mem::take(&mut bufs.table);
        raw.clear();
        verts.clear();
        raw.extend(iter);
        if raw.is_empty() {
            bufs.table = table; // keep the recycled capacity for later builds
            return LocalIndex { verts, lookup: None };
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        for v in raw.iter() {
            min = min.min(v.0);
            max = max.max(v.0);
        }
        let span = max - min + 1;
        if span <= (raw.len() as u64).saturating_mul(Self::SPAN_FACTOR).max(1024) {
            // Compact span: counting build, no sort. The presence table
            // becomes the slot lookup table.
            table.clear();
            table.resize(span as usize, NO_SLOT);
            for v in raw.iter() {
                table[(v.0 - min) as usize] = 0; // mark present
            }
            for (off, slot) in table.iter_mut().enumerate() {
                if *slot != NO_SLOT {
                    *slot = verts.len() as u32;
                    verts.push(VertexId(min + off as u64));
                }
            }
            LocalIndex { verts, lookup: Some((min, table)) }
        } else {
            bufs.table = table; // sparse build: keep the recycled capacity
            verts.extend_from_slice(raw);
            verts.sort_unstable();
            verts.dedup();
            LocalIndex { verts, lookup: None }
        }
    }

    /// Retires the index, storing its allocations in `bufs` for reuse by a
    /// later [`from_vertices_reusing`](Self::from_vertices_reusing) build.
    /// Each buffer is kept only when larger than the one already recycled.
    pub fn into_bufs(self, recycle: &mut LocalIndexBufs) {
        if self.verts.capacity() > recycle.verts.capacity() {
            recycle.verts = self.verts;
        }
        if let Some((_, table)) = self.lookup {
            if table.capacity() > recycle.table.capacity() {
                recycle.table = table;
            }
        }
    }

    /// Capacity (in entries) of the backing vertex array — allocation-reuse
    /// introspection for arena tests.
    pub fn vertex_capacity(&self) -> usize {
        self.verts.capacity()
    }

    /// Number of interned vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True when no vertex is interned.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The slot of `v`, if interned. `O(1)` through the direct-map table
    /// when the id span is compact, `O(log n)` binary search over the flat
    /// sorted array otherwise.
    #[inline]
    pub fn slot(&self, v: VertexId) -> Option<u32> {
        match &self.lookup {
            Some((base, table)) => match table.get(v.0.wrapping_sub(*base) as usize) {
                Some(&s) if s != NO_SLOT => Some(s),
                _ => None,
            },
            None => self.verts.binary_search(&v).ok().map(|s| s as u32),
        }
    }

    /// True when `v` is interned.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.slot(v).is_some()
    }

    /// The global vertex a slot names. Panics on an out-of-range slot.
    #[inline]
    pub fn vertex(&self, slot: u32) -> VertexId {
        self.verts[slot as usize]
    }

    /// All interned vertices, ascending; the slot of `vertices()[s]` is `s`.
    #[inline]
    pub fn vertices(&self) -> &[VertexId] {
        &self.verts
    }

    /// A zero-initialised per-slot state array.
    pub fn zeroed<T: Default + Clone>(&self) -> Vec<T> {
        vec![T::default(); self.verts.len()]
    }
}

/// Counting-sort a stream of `(slot, item)` pairs into one flat CSR-style
/// arena: slot `s` owns `items[offsets[s] .. offsets[s + 1]]`, with items in
/// stream order within each slot. The stream is consumed twice (count pass,
/// fill pass), so pass a factory.
///
/// This is the shared bucket-build idiom behind the Phase-1 incidence lists
/// and the Phase-3 pending-cycle index. Panics if the stream yields
/// `u32::MAX` or more pairs — the arenas index with `u32`, and wrapping
/// would silently corrupt them.
pub fn bucket_by_slot<T, I>(num_slots: usize, pairs: impl Fn() -> I) -> (Vec<u32>, Vec<T>)
where
    T: Copy + Default,
    I: Iterator<Item = (u32, T)>,
{
    let mut counts = vec![0u32; num_slots];
    let mut total: u64 = 0;
    for (s, _) in pairs() {
        counts[s as usize] += 1;
        total += 1;
    }
    assert!(total < u32::MAX as u64, "CSR arena overflow: {total} pairs do not fit u32 indices");
    let mut offsets = Vec::with_capacity(num_slots + 1);
    let mut running = 0u32;
    for &c in &counts {
        offsets.push(running);
        running += c;
    }
    offsets.push(running);
    let mut fill = offsets[..num_slots].to_vec();
    let mut items = vec![T::default(); running as usize];
    for (s, item) in pairs() {
        items[fill[s as usize] as usize] = item;
        fill[s as usize] += 1;
    }
    (offsets, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_ascending_and_dense() {
        let idx = LocalIndex::from_vertices([7u64, 3, 7, 100, 3, 0].map(VertexId));
        assert_eq!(idx.len(), 4);
        assert_eq!(idx.vertices(), &[VertexId(0), VertexId(3), VertexId(7), VertexId(100)]);
        for (s, &v) in idx.vertices().iter().enumerate() {
            assert_eq!(idx.slot(v), Some(s as u32));
            assert_eq!(idx.vertex(s as u32), v);
        }
        assert_eq!(idx.slot(VertexId(1)), None);
        assert!(idx.contains(VertexId(100)));
        assert!(!idx.contains(VertexId(99)));
    }

    #[test]
    fn empty_index() {
        let idx = LocalIndex::from_vertices(std::iter::empty());
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert_eq!(idx.slot(VertexId(0)), None);
        let state: Vec<u32> = idx.zeroed();
        assert!(state.is_empty());
    }

    #[test]
    fn zeroed_matches_len() {
        let idx = LocalIndex::from_vertices((0..5).map(VertexId));
        let state: Vec<u64> = idx.zeroed();
        assert_eq!(state.len(), 5);
        assert!(state.iter().all(|&x| x == 0));
    }

    #[test]
    fn bucket_by_slot_groups_in_stream_order() {
        let pairs = [(2u32, 'a'), (0, 'b'), (2, 'c'), (1, 'd'), (2, 'e')];
        let (offsets, items) = bucket_by_slot(4, || pairs.iter().copied());
        assert_eq!(offsets, vec![0, 1, 2, 5, 5]);
        assert_eq!(items, vec!['b', 'd', 'a', 'c', 'e']);
        // Empty stream, empty slots.
        let (offsets, items) = bucket_by_slot(2, std::iter::empty::<(u32, u8)>);
        assert_eq!(offsets, vec![0, 0, 0]);
        assert!(items.is_empty());
    }

    #[test]
    fn sparse_span_falls_back_to_binary_search() {
        // Span vastly exceeds SPAN_FACTOR * input size: no direct-map table.
        let verts: Vec<VertexId> = (0..100u64).map(|i| VertexId(i * 1_000_000)).collect();
        let idx = LocalIndex::from_vertices(verts.iter().copied().chain(verts.iter().copied()));
        assert_eq!(idx.len(), 100);
        for (s, &v) in idx.vertices().iter().enumerate() {
            assert_eq!(idx.slot(v), Some(s as u32));
        }
        assert_eq!(idx.slot(VertexId(500)), None);
        assert_eq!(idx.slot(VertexId(99_000_001)), None);
    }

    #[test]
    fn reused_bufs_build_identical_indexes_and_keep_capacity() {
        let mut bufs = LocalIndexBufs::default();
        let big: Vec<VertexId> = (0..2000u64).map(VertexId).collect();
        let idx = LocalIndex::from_vertices_reusing(big.iter().copied(), &mut bufs);
        idx.into_bufs(&mut bufs);
        let vcap = bufs.vertex_capacity();
        let tcap = bufs.table_capacity();
        assert!(vcap >= 2000 && tcap >= 2000);
        // Rebuild a much smaller index into the recycled buffers: identical
        // to a fresh build, and retiring it again never shrinks capacity.
        let small = [9u64, 3, 3, 7].map(VertexId);
        let reused = LocalIndex::from_vertices_reusing(small, &mut bufs);
        let fresh = LocalIndex::from_vertices(small);
        assert_eq!(reused.vertices(), fresh.vertices());
        for v in 0..12u64 {
            assert_eq!(reused.slot(VertexId(v)), fresh.slot(VertexId(v)), "v{v}");
        }
        reused.into_bufs(&mut bufs);
        assert!(bufs.vertex_capacity() >= vcap);
        assert!(bufs.table_capacity() >= tcap);
        // Sparse rebuild through the same recycle path also matches — and
        // must not discard the recycled table capacity (sparse builds carry
        // no table of their own, but later compact builds want it back).
        let sparse: Vec<VertexId> = (0..50u64).map(|i| VertexId(i * 1_000_000)).collect();
        let reused = LocalIndex::from_vertices_reusing(sparse.iter().copied(), &mut bufs);
        assert_eq!(reused.len(), 50);
        assert_eq!(reused.slot(VertexId(49_000_000)), Some(49));
        assert_eq!(reused.slot(VertexId(1)), None);
        assert!(bufs.table_capacity() >= tcap, "sparse build dropped the recycled table");
        let empty = LocalIndex::from_vertices_reusing(std::iter::empty(), &mut bufs);
        assert!(empty.is_empty());
        assert!(bufs.table_capacity() >= tcap, "empty build dropped the recycled table");
    }

    #[test]
    fn compact_and_sparse_paths_agree() {
        let verts = [5u64, 9, 1_000_000, 17, 5, 2].map(VertexId);
        // Compact: ids 0..=40 with a shifted base.
        let compact = LocalIndex::from_vertices([13u64, 40, 21, 13, 0].map(VertexId));
        for v in 0..=41u64 {
            let expected = [0u64, 13, 21, 40].iter().position(|&x| x == v).map(|s| s as u32);
            assert_eq!(compact.slot(VertexId(v)), expected, "v{v}");
        }
        // Sparse set: same API behaviour.
        let sparse = LocalIndex::from_vertices(verts);
        assert_eq!(sparse.len(), 5);
        assert_eq!(sparse.vertex(sparse.slot(VertexId(1_000_000)).unwrap()), VertexId(1_000_000));
    }
}
