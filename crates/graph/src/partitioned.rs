//! Partition-centric view of a graph (§3.1 of the paper).
//!
//! A graph partitioned into `n` parts is `G = {P_1, ..., P_n}` where each
//! partition `P_i = <I_i, B_i, L_i, R_i>` holds its internal vertices,
//! boundary vertices, local edges and remote edges. Local edges connect two
//! vertices of the same partition; remote edges connect a boundary vertex to a
//! vertex of another partition. As in the paper's baseline design, every
//! remote edge is stored by *both* incident partitions (the pair of directed
//! edges view); the Sec.-5 "avoid remote edge duplication" strategy relaxes
//! this in `euler-core`.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{EdgeId, PartitionId, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Mapping from every vertex of a graph to its partition.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionAssignment {
    assignment: Vec<PartitionId>,
    num_partitions: u32,
}

impl PartitionAssignment {
    /// Creates an assignment from a per-vertex vector of partition ids.
    ///
    /// # Errors
    /// Returns [`GraphError::PartitionOutOfRange`] if any entry is `>=
    /// num_partitions`.
    pub fn new(assignment: Vec<PartitionId>, num_partitions: u32) -> Result<Self, GraphError> {
        for &p in &assignment {
            if p.0 >= num_partitions {
                return Err(GraphError::PartitionOutOfRange { partition: p, num_partitions });
            }
        }
        Ok(PartitionAssignment { assignment, num_partitions })
    }

    /// Builds an assignment from raw `u32` labels.
    pub fn from_labels(labels: Vec<u32>, num_partitions: u32) -> Result<Self, GraphError> {
        Self::new(labels.into_iter().map(PartitionId).collect(), num_partitions)
    }

    /// Partition of vertex `v`.
    #[inline]
    pub fn partition_of(&self, v: VertexId) -> PartitionId {
        self.assignment[v.index()]
    }

    /// Number of partitions.
    #[inline]
    pub fn num_partitions(&self) -> u32 {
        self.num_partitions
    }

    /// Number of vertices covered by the assignment.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.assignment.len() as u64
    }

    /// Number of vertices assigned to each partition.
    pub fn partition_sizes(&self) -> Vec<u64> {
        let mut sizes = vec![0u64; self.num_partitions as usize];
        for p in &self.assignment {
            sizes[p.index()] += 1;
        }
        sizes
    }

    /// Peak vertex imbalance across partitions, as defined in Table 1 of the
    /// paper: `max_i | (|V| - n * |V_i|) / |V| |`.
    pub fn imbalance(&self) -> f64 {
        let total = self.assignment.len() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let n = self.num_partitions as f64;
        self.partition_sizes()
            .iter()
            .map(|&s| ((total - n * s as f64) / total).abs())
            .fold(0.0, f64::max)
    }
}

/// A remote edge as seen from one of its incident partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteEdge {
    /// Identifier of the underlying graph edge.
    pub edge: EdgeId,
    /// The endpoint inside this partition (a boundary vertex).
    pub local_vertex: VertexId,
    /// The endpoint inside the other partition.
    pub remote_vertex: VertexId,
    /// The partition owning the remote endpoint.
    pub remote_partition: PartitionId,
}

/// One partition `P_i = <I_i, B_i, L_i, R_i>` of a partitioned graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Partition {
    /// Partition identifier.
    pub id: PartitionId,
    /// Internal vertices: all incident edges are local.
    pub internal: Vec<VertexId>,
    /// Boundary vertices: at least one incident edge is remote.
    pub boundary: Vec<VertexId>,
    /// Local edges with their endpoints, so the partition is self-contained.
    pub local_edges: Vec<(EdgeId, VertexId, VertexId)>,
    /// Remote edges incident on this partition's boundary vertices.
    pub remote_edges: Vec<RemoteEdge>,
}

impl Partition {
    /// Creates an empty partition with the given id.
    pub fn new(id: PartitionId) -> Self {
        Partition { id, ..Default::default() }
    }

    /// All vertices of the partition (internal then boundary).
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.internal.iter().chain(self.boundary.iter()).copied()
    }

    /// Number of vertices in the partition.
    pub fn num_vertices(&self) -> u64 {
        (self.internal.len() + self.boundary.len()) as u64
    }

    /// Local (undirected) edge count `|L_i|`.
    pub fn num_local_edges(&self) -> u64 {
        self.local_edges.len() as u64
    }

    /// Remote edge count `|R_i|` (each remote edge counted once per incident
    /// partition, i.e. the directed-pair view of the paper).
    pub fn num_remote_edges(&self) -> u64 {
        self.remote_edges.len() as u64
    }

    /// Local degree `δ_L(v)` of every vertex, as a map.
    pub fn local_degrees(&self) -> HashMap<VertexId, u64> {
        let mut deg: HashMap<VertexId, u64> = HashMap::new();
        for v in self.vertices() {
            deg.insert(v, 0);
        }
        for &(_, u, v) in &self.local_edges {
            *deg.entry(u).or_insert(0) += 1;
            *deg.entry(v).or_insert(0) += 1;
        }
        deg
    }

    /// Remote degree `δ_R(v)` of every boundary vertex, as a map.
    pub fn remote_degrees(&self) -> HashMap<VertexId, u64> {
        let mut deg: HashMap<VertexId, u64> = HashMap::new();
        for r in &self.remote_edges {
            *deg.entry(r.local_vertex).or_insert(0) += 1;
        }
        deg
    }

    /// Boundary vertices with odd local degree (`OB_i`) and with even local
    /// degree (`EB_i`), in that order.
    pub fn classify_boundary(&self) -> (Vec<VertexId>, Vec<VertexId>) {
        let deg = self.local_degrees();
        let mut odd = Vec::new();
        let mut even = Vec::new();
        for &v in &self.boundary {
            if deg.get(&v).copied().unwrap_or(0) % 2 == 1 {
                odd.push(v);
            } else {
                even.push(v);
            }
        }
        (odd, even)
    }

    /// The expected Phase-1 work for this partition, `O(|B_i| + |I_i| +
    /// |L_i|)` (§3.5 of the paper). Used by the Fig.-7 harness.
    pub fn phase1_complexity(&self) -> u64 {
        self.boundary.len() as u64 + self.internal.len() as u64 + self.num_local_edges()
    }

    /// Memory state of the partition in 8-byte Longs, following the paper's
    /// accounting: one Long per vertex id, three Longs per local edge
    /// (edge id + two endpoints), and four Longs per remote edge (edge id,
    /// local vertex, remote vertex, remote partition).
    pub fn memory_longs(&self) -> u64 {
        self.num_vertices() + 3 * self.num_local_edges() + 4 * self.num_remote_edges()
    }
}

/// A graph partitioned into `n` parts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionedGraph {
    partitions: Vec<Partition>,
    num_vertices: u64,
    num_edges: u64,
    cut_edges: u64,
}

impl PartitionedGraph {
    /// Splits `g` according to `assignment`, producing one [`Partition`] per
    /// partition id. Every remote edge appears in both incident partitions.
    ///
    /// # Errors
    /// Returns [`GraphError::IncompleteAssignment`] if the assignment does not
    /// cover every vertex of `g`.
    pub fn from_assignment(g: &Graph, assignment: &PartitionAssignment) -> Result<Self, GraphError> {
        build_partition_view(g.num_vertices(), g.num_edges(), assignment, g.edges())
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Mutable access to the partitions (used by merge strategies).
    pub fn partitions_mut(&mut self) -> &mut [Partition] {
        &mut self.partitions
    }

    /// Consumes the partitioned graph, returning its partitions.
    pub fn into_partitions(self) -> Vec<Partition> {
        self.partitions
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Number of vertices of the underlying graph.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of undirected edges of the underlying graph.
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Number of undirected edges whose endpoints lie in different partitions.
    pub fn cut_edges(&self) -> u64 {
        self.cut_edges
    }

    /// Fraction of edges that are cut, `Σ|R_i| / |E|` in the paper's
    /// bi-directed accounting (equal to cut edges over undirected edges).
    pub fn cut_fraction(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.num_edges as f64
        }
    }

    /// Total number of boundary vertices across all partitions, `Σ|B_i|`.
    pub fn total_boundary_vertices(&self) -> u64 {
        self.partitions.iter().map(|p| p.boundary.len() as u64).sum()
    }

    /// Total memory state of all partitions in Longs.
    pub fn memory_longs(&self) -> u64 {
        self.partitions.iter().map(|p| p.memory_longs()).sum()
    }
}

/// The one partition-view construction behind both
/// [`PartitionedGraph::from_assignment`] and the [`crate::csr_file`] direct
/// slicer: routes each edge as local or remote (remote edges recorded by
/// both incident partitions, the paper's directed-pair view) and classifies
/// every vertex as internal or boundary. Taking the edges as an iterator is
/// what lets the CSR path feed the mapped endpoints section straight in
/// without materialising a [`Graph`] — both callers must therefore stay on
/// this helper so their partition views remain bit-identical.
///
/// # Errors
/// [`GraphError::IncompleteAssignment`] when the assignment does not cover
/// `num_vertices`.
pub(crate) fn build_partition_view(
    num_vertices: u64,
    num_edges: u64,
    assignment: &PartitionAssignment,
    edges: impl Iterator<Item = (EdgeId, VertexId, VertexId)>,
) -> Result<PartitionedGraph, GraphError> {
    if assignment.num_vertices() != num_vertices {
        return Err(GraphError::IncompleteAssignment {
            expected: num_vertices,
            actual: assignment.num_vertices(),
        });
    }
    let n = assignment.num_partitions() as usize;
    let mut partitions: Vec<Partition> = (0..n).map(|i| Partition::new(PartitionId(i as u32))).collect();
    let mut is_boundary = vec![false; num_vertices as usize];
    let mut cut_edges = 0u64;

    for (e, u, v) in edges {
        let pu = assignment.partition_of(u);
        let pv = assignment.partition_of(v);
        if pu == pv {
            partitions[pu.index()].local_edges.push((e, u, v));
        } else {
            cut_edges += 1;
            is_boundary[u.index()] = true;
            is_boundary[v.index()] = true;
            partitions[pu.index()].remote_edges.push(RemoteEdge {
                edge: e,
                local_vertex: u,
                remote_vertex: v,
                remote_partition: pv,
            });
            partitions[pv.index()].remote_edges.push(RemoteEdge {
                edge: e,
                local_vertex: v,
                remote_vertex: u,
                remote_partition: pu,
            });
        }
    }
    for v in (0..num_vertices).map(VertexId) {
        let p = assignment.partition_of(v);
        if is_boundary[v.index()] {
            partitions[p.index()].boundary.push(v);
        } else {
            partitions[p.index()].internal.push(v);
        }
    }
    Ok(PartitionedGraph { partitions, num_vertices, num_edges, cut_edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    /// The Fig.-1a graph of the paper: 14 vertices, 4 partitions.
    /// Vertex numbering follows the paper (1-based there, 0-based here by
    /// subtracting 1).
    pub(crate) fn fig1_graph() -> (Graph, PartitionAssignment) {
        let edges = [
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (3, 5),
            (3, 13),
            (12, 13),
            (11, 12),
            (6, 11),
            (6, 7),
            (7, 8),
            (8, 9),
            (9, 10),
            (10, 12),
            (12, 14),
            (1, 14),
        ];
        let edges: Vec<(u64, u64)> = edges.iter().map(|&(u, v)| (u - 1, v - 1)).collect();
        let mut b = crate::builder::GraphBuilder::with_vertices(14);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        // P1 = {v1, v2, v14}, P2 = {v3, v4, v5}, P3 = {v6..v9}, P4 = {v10..v13}
        let labels = vec![0, 0, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 0];
        let assignment = PartitionAssignment::from_labels(labels, 4).unwrap();
        (g, assignment)
    }

    #[test]
    fn fig1_partition_structure() {
        let (g, a) = fig1_graph();
        crate::properties::is_eulerian(&g).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        assert_eq!(pg.num_partitions(), 4);
        // Remote (cut) edges in Fig. 1a: e2,3  e3,13  e6,11  e9,10  e12,14  e1,14 is local to P1?
        // v1 and v14 are both in P0, so e1,14 is local; cut edges are
        // e2,3 (P0-P1), e3,13 (P1-P3), e6,11 (P2-P3), e9,10 (P2-P3), e12,14 (P3-P0).
        assert_eq!(pg.cut_edges(), 5);
        let p1 = &pg.partitions()[1]; // paper's P2 = {v3,v4,v5}
        assert_eq!(p1.num_vertices(), 3);
        assert_eq!(p1.num_local_edges(), 3); // e3,4 e4,5 e3,5
        assert_eq!(p1.boundary, vec![VertexId(2)]); // v3
        let (odd, even) = p1.classify_boundary();
        assert!(odd.is_empty());
        assert_eq!(even, vec![VertexId(2)]); // v3 is an EB with 2 remote edges
        assert_eq!(p1.remote_edges.len(), 2);
    }

    #[test]
    fn fig1_p3_has_two_odd_boundaries() {
        let (g, a) = fig1_graph();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let p3 = &pg.partitions()[2]; // paper's P3 = {v6..v9}
        let (odd, even) = p3.classify_boundary();
        // v6 and v9 each have one remote edge and odd local degree.
        let mut odd_ids: Vec<u64> = odd.iter().map(|v| v.0).collect();
        odd_ids.sort_unstable();
        assert_eq!(odd_ids, vec![5, 8]);
        assert!(even.is_empty());
    }

    #[test]
    fn remote_edges_are_duplicated_across_partitions() {
        let (g, a) = fig1_graph();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let total_remote: u64 = pg.partitions().iter().map(|p| p.num_remote_edges()).sum();
        assert_eq!(total_remote, 2 * pg.cut_edges());
    }

    #[test]
    fn every_vertex_in_exactly_one_partition() {
        let (g, a) = fig1_graph();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let mut seen = vec![0u32; g.num_vertices() as usize];
        for p in pg.partitions() {
            for v in p.vertices() {
                seen[v.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn every_local_edge_in_exactly_one_partition() {
        let (g, a) = fig1_graph();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let local: u64 = pg.partitions().iter().map(|p| p.num_local_edges()).sum();
        assert_eq!(local + pg.cut_edges(), g.num_edges());
    }

    #[test]
    fn assignment_size_mismatch_rejected() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let a = PartitionAssignment::from_labels(vec![0, 1], 2).unwrap();
        assert!(matches!(
            PartitionedGraph::from_assignment(&g, &a),
            Err(GraphError::IncompleteAssignment { .. })
        ));
    }

    #[test]
    fn assignment_label_out_of_range_rejected() {
        assert!(PartitionAssignment::from_labels(vec![0, 2], 2).is_err());
    }

    #[test]
    fn imbalance_of_balanced_assignment_is_zero() {
        let a = PartitionAssignment::from_labels(vec![0, 0, 1, 1], 2).unwrap();
        assert!(a.imbalance().abs() < 1e-12);
        assert_eq!(a.partition_sizes(), vec![2, 2]);
    }

    #[test]
    fn imbalance_matches_table1_definition() {
        // 4 vertices, 2 partitions, sizes 3 and 1: max |(4 - 2*3)/4|, |(4-2*1)/4| = 0.5
        let a = PartitionAssignment::from_labels(vec![0, 0, 0, 1], 2).unwrap();
        assert!((a.imbalance() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phase1_complexity_counts_b_i_l() {
        let (g, a) = fig1_graph();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let p1 = &pg.partitions()[1];
        assert_eq!(p1.phase1_complexity(), 1 + 2 + 3); // B=1 (v3), I=2 (v4,v5), L=3
    }

    #[test]
    fn memory_longs_positive_and_additive() {
        let (g, a) = fig1_graph();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        let sum: u64 = pg.partitions().iter().map(|p| p.memory_longs()).sum();
        assert_eq!(sum, pg.memory_longs());
        assert!(sum > 0);
    }
}
