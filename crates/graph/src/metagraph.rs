//! The partition meta-graph (§3.1).
//!
//! The meta-graph `Ĝ = <V̂, Ê>` has one meta-vertex per partition and a
//! weighted meta-edge between two partitions when at least one graph edge
//! connects their boundary vertices; the weight `ω(m_ij)` is the number of
//! such edges. Phase 2 computes the merge tree by repeated greedy maximal
//! weighted matching over this meta-graph.

use crate::ids::PartitionId;
use crate::partitioned::PartitionedGraph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A weighted edge of the meta-graph between two partitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetaEdge {
    /// Smaller-id endpoint.
    pub a: PartitionId,
    /// Larger-id endpoint.
    pub b: PartitionId,
    /// Number of graph edges between boundary vertices of `a` and `b`.
    pub weight: u64,
}

/// The weighted partition meta-graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct MetaGraph {
    /// Meta-vertices (partition ids). Kept explicitly because after merges the
    /// surviving ids are not contiguous.
    pub vertices: Vec<PartitionId>,
    /// Meta-edges, one per unordered partition pair with at least one cut edge.
    pub edges: Vec<MetaEdge>,
}

impl MetaGraph {
    /// Builds the meta-graph of a partitioned graph.
    pub fn from_partitioned(pg: &PartitionedGraph) -> Self {
        let vertices: Vec<PartitionId> = pg.partitions().iter().map(|p| p.id).collect();
        let mut weights: HashMap<(PartitionId, PartitionId), u64> = HashMap::new();
        for p in pg.partitions() {
            for r in &p.remote_edges {
                let (a, b) = order(p.id, r.remote_partition);
                *weights.entry((a, b)).or_insert(0) += 1;
            }
        }
        // Every cut edge was counted twice (once from each incident partition).
        let mut edges: Vec<MetaEdge> = weights
            .into_iter()
            .map(|((a, b), w)| MetaEdge { a, b, weight: w / 2 })
            .collect();
        edges.sort_by_key(|e| (e.a, e.b));
        MetaGraph { vertices, edges }
    }

    /// Builds a meta-graph directly from explicit vertices and weighted pairs.
    pub fn from_weights(vertices: Vec<PartitionId>, pairs: &[(PartitionId, PartitionId, u64)]) -> Self {
        let mut edges: Vec<MetaEdge> = pairs
            .iter()
            .map(|&(a, b, w)| {
                let (a, b) = order(a, b);
                MetaEdge { a, b, weight: w }
            })
            .collect();
        edges.sort_by_key(|e| (e.a, e.b));
        MetaGraph { vertices, edges }
    }

    /// Number of meta-vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of meta-edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Weight between two partitions, or 0 if no meta-edge exists.
    pub fn weight(&self, a: PartitionId, b: PartitionId) -> u64 {
        let (a, b) = order(a, b);
        self.edges
            .iter()
            .find(|e| e.a == a && e.b == b)
            .map(|e| e.weight)
            .unwrap_or(0)
    }

    /// Total weight (number of cut edges represented).
    pub fn total_weight(&self) -> u64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Collapses pairs of meta-vertices into their parents, producing the
    /// meta-graph of the next merge level (the `rebuildMetaGraph` step of
    /// Alg. 2). `parent_of` maps each current meta-vertex to its meta-vertex
    /// at the next level (itself if unmerged).
    pub fn contract(&self, parent_of: &HashMap<PartitionId, PartitionId>) -> MetaGraph {
        let mut vertices: Vec<PartitionId> = self
            .vertices
            .iter()
            .map(|v| *parent_of.get(v).unwrap_or(v))
            .collect();
        vertices.sort_unstable();
        vertices.dedup();
        let mut weights: HashMap<(PartitionId, PartitionId), u64> = HashMap::new();
        for e in &self.edges {
            let pa = *parent_of.get(&e.a).unwrap_or(&e.a);
            let pb = *parent_of.get(&e.b).unwrap_or(&e.b);
            if pa == pb {
                continue; // became internal to the merged partition
            }
            let (a, b) = order(pa, pb);
            *weights.entry((a, b)).or_insert(0) += e.weight;
        }
        let mut edges: Vec<MetaEdge> = weights
            .into_iter()
            .map(|((a, b), weight)| MetaEdge { a, b, weight })
            .collect();
        edges.sort_by_key(|e| (e.a, e.b));
        MetaGraph { vertices, edges }
    }
}

fn order(a: PartitionId, b: PartitionId) -> (PartitionId, PartitionId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::partitioned::PartitionAssignment;

    fn fig1() -> PartitionedGraph {
        let edges: Vec<(u64, u64)> = [
            (1, 2), (2, 3), (3, 4), (4, 5), (3, 5), (3, 13), (12, 13), (11, 12),
            (6, 11), (6, 7), (7, 8), (8, 9), (9, 10), (10, 12), (12, 14), (1, 14),
        ]
        .iter()
        .map(|&(u, v)| (u - 1, v - 1))
        .collect();
        let mut b = GraphBuilder::with_vertices(14);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let labels = vec![0, 0, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 0];
        let a = PartitionAssignment::from_labels(labels, 4).unwrap();
        PartitionedGraph::from_assignment(&g, &a).unwrap()
    }

    #[test]
    fn fig1_metagraph_weights() {
        let mg = MetaGraph::from_partitioned(&fig1());
        assert_eq!(mg.num_vertices(), 4);
        // Cut edges: P0-P1 (e2,3), P1-P3 (e3,13), P2-P3 (e6,11 and e9,10), P0-P3 (e12,14).
        assert_eq!(mg.weight(PartitionId(0), PartitionId(1)), 1);
        assert_eq!(mg.weight(PartitionId(1), PartitionId(3)), 1);
        assert_eq!(mg.weight(PartitionId(2), PartitionId(3)), 2);
        assert_eq!(mg.weight(PartitionId(0), PartitionId(3)), 1);
        assert_eq!(mg.weight(PartitionId(0), PartitionId(2)), 0);
        assert_eq!(mg.total_weight(), 5);
    }

    #[test]
    fn weight_is_symmetric() {
        let mg = MetaGraph::from_partitioned(&fig1());
        assert_eq!(
            mg.weight(PartitionId(3), PartitionId(2)),
            mg.weight(PartitionId(2), PartitionId(3))
        );
    }

    #[test]
    fn contract_merges_pairs_and_sums_weights() {
        let mg = MetaGraph::from_partitioned(&fig1());
        // Merge P0 into P1 and P2 into P3 (paper's level-0 choice is P3/P4 and P1/P2).
        let mut parent = HashMap::new();
        parent.insert(PartitionId(0), PartitionId(1));
        parent.insert(PartitionId(2), PartitionId(3));
        let next = mg.contract(&parent);
        assert_eq!(next.num_vertices(), 2);
        // Remaining cut edges between merged P1 and merged P3: e3,13 and e12,14 = weight 2.
        assert_eq!(next.weight(PartitionId(1), PartitionId(3)), 2);
        assert_eq!(next.num_edges(), 1);
    }

    #[test]
    fn contract_to_single_vertex_has_no_edges() {
        let mg = MetaGraph::from_partitioned(&fig1());
        let mut parent = HashMap::new();
        for p in 0..4 {
            parent.insert(PartitionId(p), PartitionId(3));
        }
        let next = mg.contract(&parent);
        assert_eq!(next.num_vertices(), 1);
        assert_eq!(next.num_edges(), 0);
    }

    #[test]
    fn from_weights_orders_endpoints() {
        let mg = MetaGraph::from_weights(
            vec![PartitionId(0), PartitionId(1)],
            &[(PartitionId(1), PartitionId(0), 7)],
        );
        assert_eq!(mg.edges[0].a, PartitionId(0));
        assert_eq!(mg.edges[0].b, PartitionId(1));
        assert_eq!(mg.weight(PartitionId(0), PartitionId(1)), 7);
    }
}
