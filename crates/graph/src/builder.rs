//! Incremental construction of [`Graph`]s.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::VertexId;

/// Builder for [`Graph`] that grows the vertex set on demand.
///
/// Unlike [`Graph::add_edge`], which requires both endpoints to already exist,
/// the builder accepts arbitrary `u64` vertex identifiers and grows the vertex
/// count to cover the largest one seen. Duplicate edges are kept (the result is
/// a multigraph) unless [`GraphBuilder::dedup`] is enabled.
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(u64, u64)>,
    num_vertices: u64,
    dedup: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that will produce a graph with at least
    /// `num_vertices` vertices even if some are isolated.
    pub fn with_vertices(num_vertices: u64) -> Self {
        GraphBuilder { edges: Vec::new(), num_vertices, dedup: false }
    }

    /// Pre-allocates capacity for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// If enabled, parallel edges (same unordered endpoint pair) are collapsed
    /// into a single edge when [`build`](Self::build) is called.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Ensures the built graph will have at least `n` vertices.
    pub fn ensure_vertices(&mut self, n: u64) -> &mut Self {
        self.num_vertices = self.num_vertices.max(n);
        self
    }

    /// Adds an undirected edge between raw vertex identifiers `u` and `v`.
    pub fn add_edge(&mut self, u: u64, v: u64) -> &mut Self {
        self.num_vertices = self.num_vertices.max(u + 1).max(v + 1);
        self.edges.push((u, v));
        self
    }

    /// Adds every edge in the iterator.
    pub fn extend_edges<I: IntoIterator<Item = (u64, u64)>>(&mut self, iter: I) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Number of edges currently queued in the builder.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Builds the [`Graph`].
    ///
    /// # Errors
    /// Propagates [`GraphError::VertexOutOfRange`] (cannot occur with edges
    /// added through the builder, but kept for API uniformity).
    pub fn build(mut self) -> Result<Graph, GraphError> {
        if self.dedup {
            let mut seen = std::collections::HashSet::with_capacity(self.edges.len());
            self.edges.retain(|&(u, v)| seen.insert((u.min(v), u.max(v))));
        }
        let mut g = Graph::empty(self.num_vertices);
        g.endpoints.reserve(self.edges.len());
        for &(u, v) in &self.edges {
            g.add_edge(VertexId(u), VertexId(v))?;
        }
        Ok(g)
    }
}

/// Convenience constructor: builds a graph from a slice of `(u, v)` pairs.
pub fn graph_from_edges(edges: &[(u64, u64)]) -> Graph {
    let mut b = GraphBuilder::new();
    b.extend_edges(edges.iter().copied());
    b.build().expect("builder edges are always in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn builder_grows_vertex_set() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 5).add_edge(2, 3);
        assert_eq!(b.num_vertices(), 6);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(4)), 0);
    }

    #[test]
    fn with_vertices_keeps_isolated() {
        let b = GraphBuilder::with_vertices(10);
        let g = b.build().unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn dedup_collapses_parallel_edges() {
        let mut b = GraphBuilder::new().dedup(true);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1).add_edge(1, 2);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn without_dedup_keeps_parallel_edges() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1).add_edge(1, 0);
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(VertexId(0)), 2);
    }

    #[test]
    fn graph_from_edges_helper() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn extend_edges_accepts_iterator() {
        let mut b = GraphBuilder::new();
        b.extend_edges((0..4).map(|i| (i, (i + 1) % 4)));
        let g = b.build().unwrap();
        assert_eq!(g.num_edges(), 4);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
    }
}
