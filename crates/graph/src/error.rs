//! Error types for graph construction, I/O and validation.

use crate::ids::{PartitionId, VertexId};
use std::fmt;

/// Errors raised by the graph substrate.
#[derive(Debug)]
pub enum GraphError {
    /// A vertex identifier was outside `0..num_vertices`.
    VertexOutOfRange {
        /// Offending vertex.
        vertex: VertexId,
        /// Number of vertices in the graph.
        num_vertices: u64,
    },
    /// A partition identifier was outside `0..num_partitions`.
    PartitionOutOfRange {
        /// Offending partition.
        partition: PartitionId,
        /// Number of partitions.
        num_partitions: u32,
    },
    /// A partition assignment did not cover every vertex of the graph.
    IncompleteAssignment {
        /// Number of vertices in the graph.
        expected: u64,
        /// Number of vertices in the assignment.
        actual: u64,
    },
    /// The graph is not Eulerian: at least one vertex has odd degree.
    NotEulerian {
        /// An example vertex with odd degree.
        vertex: VertexId,
        /// Its degree.
        degree: u64,
    },
    /// The edges of the graph do not form a single connected component, so a
    /// single Euler circuit covering all edges cannot exist.
    Disconnected {
        /// Number of non-trivial connected components found.
        components: usize,
    },
    /// An I/O error when reading or writing a graph file.
    Io(std::io::Error),
    /// A malformed or corrupt binary `.ecsr` CSR file
    /// (see [`crate::csr_file`]).
    CsrFormat(crate::csr_file::CsrFileError),
    /// A parse error in an edge-list file.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// An edge stream cannot satisfy a consumer's requirement (wrong
    /// [`crate::StreamOrder`], vertex count not known up front, ...).
    UnsupportedStream {
        /// The consumer that rejected the stream.
        consumer: String,
        /// What the consumer needed and what the stream offered.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} out of range (graph has {num_vertices} vertices)")
            }
            GraphError::PartitionOutOfRange { partition, num_partitions } => {
                write!(f, "partition {partition} out of range ({num_partitions} partitions)")
            }
            GraphError::IncompleteAssignment { expected, actual } => {
                write!(f, "partition assignment covers {actual} vertices, graph has {expected}")
            }
            GraphError::NotEulerian { vertex, degree } => {
                write!(f, "graph is not Eulerian: vertex {vertex} has odd degree {degree}")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph edges span {components} connected components; a single Euler circuit requires one")
            }
            GraphError::Io(e) => write!(f, "I/O error: {e}"),
            GraphError::CsrFormat(e) => write!(f, "{e}"),
            GraphError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            GraphError::UnsupportedStream { consumer, message } => {
                write!(f, "{consumer} cannot consume this edge stream: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl From<crate::csr_file::CsrFileError> for GraphError {
    fn from(e: crate::csr_file::CsrFileError) -> Self {
        GraphError::CsrFormat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_fields() {
        let e = GraphError::VertexOutOfRange { vertex: VertexId(9), num_vertices: 5 };
        assert!(e.to_string().contains("v9"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::NotEulerian { vertex: VertexId(2), degree: 3 };
        assert!(e.to_string().contains("odd degree 3"));

        let e = GraphError::Disconnected { components: 4 };
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
