//! Compressed sparse row (CSR) view of a [`Graph`].
//!
//! Compute kernels (Phase-1 traversals, baselines, partitioners) iterate over
//! adjacency lists heavily; the CSR layout packs them into two flat arrays for
//! cache-friendly scans, as recommended for irregular graph workloads.

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};

/// Compressed sparse row adjacency structure.
///
/// For vertex `v`, its incident half-edges occupy
/// `targets[offsets[v] .. offsets[v + 1]]` and `edge_ids[..]` in parallel.
/// A self-loop appears twice (consistent with [`Graph::degree`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Csr {
    num_vertices: u64,
    num_edges: u64,
    offsets: Vec<u64>,
    targets: Vec<VertexId>,
    edge_ids: Vec<EdgeId>,
}

impl Csr {
    /// Builds a CSR view from an adjacency-list graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_vertices() as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        let half_edges: usize = (0..n).map(|v| g.neighbors(VertexId(v as u64)).len()).sum();
        let mut targets = Vec::with_capacity(half_edges);
        let mut edge_ids = Vec::with_capacity(half_edges);
        let mut running = 0u64;
        for v in 0..n {
            offsets.push(running);
            for &(nbr, e) in g.neighbors(VertexId(v as u64)) {
                targets.push(nbr);
                edge_ids.push(e);
                running += 1;
            }
        }
        offsets.push(running);
        Csr { num_vertices: g.num_vertices(), num_edges: g.num_edges(), offsets, targets, edge_ids }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Degree of `v` (self-loops count twice).
    #[inline]
    pub fn degree(&self, v: VertexId) -> u64 {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Incident half-edges of `v` as parallel slices `(targets, edge_ids)`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> (&[VertexId], &[EdgeId]) {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        (&self.targets[lo..hi], &self.edge_ids[lo..hi])
    }

    /// Iterator over `(neighbour, edge)` pairs of `v`.
    pub fn neighbor_iter(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        let (t, e) = self.neighbors(v);
        t.iter().copied().zip(e.iter().copied())
    }

    /// Total size of the CSR arrays in 8-byte Longs.
    pub fn memory_longs(&self) -> u64 {
        (self.offsets.len() + self.targets.len() + self.edge_ids.len()) as u64
    }
}

impl From<&Graph> for Csr {
    fn from(g: &Graph) -> Self {
        Csr::from_graph(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn csr_matches_graph_degrees() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (2, 3), (3, 2)]);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_vertices(), g.num_vertices());
        assert_eq!(csr.num_edges(), g.num_edges());
        for v in g.vertices() {
            assert_eq!(csr.degree(v), g.degree(v), "degree mismatch at {v}");
        }
    }

    #[test]
    fn csr_neighbors_match_graph() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3)]);
        let csr = Csr::from_graph(&g);
        let (targets, edges) = csr.neighbors(VertexId(0));
        assert_eq!(targets.len(), 3);
        assert_eq!(edges.len(), 3);
        let mut t: Vec<u64> = targets.iter().map(|v| v.0).collect();
        t.sort_unstable();
        assert_eq!(t, vec![1, 2, 3]);
    }

    #[test]
    fn csr_self_loop_counts_twice() {
        let g = graph_from_edges(&[(0, 0), (0, 1)]);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.degree(VertexId(0)), 3);
        assert_eq!(csr.degree(VertexId(1)), 1);
    }

    #[test]
    fn neighbor_iter_pairs_up() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let csr = Csr::from_graph(&g);
        let pairs: Vec<_> = csr.neighbor_iter(VertexId(1)).collect();
        assert_eq!(pairs.len(), 2);
        for (nbr, e) in pairs {
            assert_eq!(g.other_endpoint(e, VertexId(1)), nbr);
        }
    }

    #[test]
    fn empty_graph_csr() {
        let g = Graph::empty(4);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.num_edges(), 0);
        for v in g.vertices() {
            assert_eq!(csr.degree(v), 0);
        }
        assert_eq!(csr.memory_longs(), 5);
    }
}
