//! The undirected multigraph type.

use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};

/// An undirected multigraph with stable edge identifiers.
///
/// Vertices are contiguous `0..num_vertices()`. Each undirected edge is stored
/// once as an ordered pair of endpoints plus an adjacency index that lists, for
/// each vertex, its incident `(neighbour, edge)` pairs. Parallel edges and
/// self-loops are permitted (the Eulerizer in `euler-gen` may create parallel
/// edges); a self-loop contributes 2 to the degree of its vertex, consistent
/// with the handshaking lemma.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    pub(crate) num_vertices: u64,
    /// Endpoints of every edge, indexed by `EdgeId`.
    pub(crate) endpoints: Vec<(VertexId, VertexId)>,
    /// Adjacency list: for each vertex, the incident `(neighbour, edge)` pairs.
    /// A self-loop appears twice in its vertex's list.
    pub(crate) adjacency: Vec<Vec<(VertexId, EdgeId)>>,
}

impl Graph {
    /// Creates an empty graph with `num_vertices` vertices and no edges.
    pub fn empty(num_vertices: u64) -> Self {
        Graph {
            num_vertices,
            endpoints: Vec::new(),
            adjacency: vec![Vec::new(); num_vertices as usize],
        }
    }

    /// Number of vertices (including isolated ones).
    #[inline]
    pub fn num_vertices(&self) -> u64 {
        self.num_vertices
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        self.endpoints.len() as u64
    }

    /// Returns the two endpoints of an edge, in the order they were inserted.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[edge.index()]
    }

    /// Given an edge and one of its endpoints, returns the opposite endpoint.
    ///
    /// For a self-loop both endpoints are the same vertex and that vertex is
    /// returned.
    #[inline]
    pub fn other_endpoint(&self, edge: EdgeId, vertex: VertexId) -> VertexId {
        let (a, b) = self.endpoints[edge.index()];
        if a == vertex {
            b
        } else {
            debug_assert_eq!(b, vertex, "vertex {vertex} is not an endpoint of {edge}");
            a
        }
    }

    /// Degree of a vertex. A self-loop counts twice.
    #[inline]
    pub fn degree(&self, vertex: VertexId) -> u64 {
        self.adjacency[vertex.index()].len() as u64
    }

    /// Incident `(neighbour, edge)` pairs of a vertex.
    #[inline]
    pub fn neighbors(&self, vertex: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adjacency[vertex.index()]
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices).map(VertexId)
    }

    /// Iterator over all edges as `(edge, u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, VertexId, VertexId)> + '_ {
        self.endpoints
            .iter()
            .enumerate()
            .map(|(i, &(u, v))| (EdgeId(i as u64), u, v))
    }

    /// Adds an undirected edge between `u` and `v`, returning its identifier.
    ///
    /// # Errors
    /// Returns [`GraphError::VertexOutOfRange`] if either endpoint does not
    /// exist.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> Result<EdgeId, GraphError> {
        for w in [u, v] {
            if w.0 >= self.num_vertices {
                return Err(GraphError::VertexOutOfRange { vertex: w, num_vertices: self.num_vertices });
            }
        }
        let id = EdgeId(self.endpoints.len() as u64);
        self.endpoints.push((u, v));
        self.adjacency[u.index()].push((v, id));
        if u == v {
            // Self-loop: the single adjacency entry above plus this one makes
            // the loop contribute 2 to the degree.
            self.adjacency[u.index()].push((v, id));
        } else {
            self.adjacency[v.index()].push((u, id));
        }
        Ok(id)
    }

    /// Total memory state of the graph in 8-byte Longs, using the paper's
    /// accounting: one Long per vertex plus two Longs per directed edge
    /// (an undirected edge is represented as a pair of directed edges).
    pub fn memory_longs(&self) -> u64 {
        self.num_vertices + 4 * self.num_edges()
    }

    /// True if the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.endpoints.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::empty(3);
        g.add_edge(VertexId(0), VertexId(1)).unwrap();
        g.add_edge(VertexId(1), VertexId(2)).unwrap();
        g.add_edge(VertexId(2), VertexId(0)).unwrap();
        g
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(g.is_empty());
        for v in g.vertices() {
            assert_eq!(g.degree(v), 0);
        }
    }

    #[test]
    fn triangle_degrees_and_endpoints() {
        let g = triangle();
        assert_eq!(g.num_edges(), 3);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.endpoints(EdgeId(0)), (VertexId(0), VertexId(1)));
        assert_eq!(g.other_endpoint(EdgeId(0), VertexId(0)), VertexId(1));
        assert_eq!(g.other_endpoint(EdgeId(0), VertexId(1)), VertexId(0));
    }

    #[test]
    fn parallel_edges_get_distinct_ids() {
        let mut g = Graph::empty(2);
        let e1 = g.add_edge(VertexId(0), VertexId(1)).unwrap();
        let e2 = g.add_edge(VertexId(0), VertexId(1)).unwrap();
        assert_ne!(e1, e2);
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.degree(VertexId(1)), 2);
    }

    #[test]
    fn self_loop_counts_twice() {
        let mut g = Graph::empty(1);
        g.add_edge(VertexId(0), VertexId(0)).unwrap();
        assert_eq!(g.degree(VertexId(0)), 2);
        assert_eq!(g.other_endpoint(EdgeId(0), VertexId(0)), VertexId(0));
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut g = Graph::empty(2);
        let err = g.add_edge(VertexId(0), VertexId(2)).unwrap_err();
        assert!(matches!(err, GraphError::VertexOutOfRange { .. }));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edges_iterator_yields_all() {
        let g = triangle();
        let collected: Vec<_> = g.edges().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[1], (EdgeId(1), VertexId(1), VertexId(2)));
    }

    #[test]
    fn memory_longs_accounting() {
        let g = triangle();
        // 3 vertices + 4 Longs per undirected edge (pair of directed edges).
        assert_eq!(g.memory_longs(), 3 + 12);
    }

    #[test]
    fn neighbors_list_matches_degree() {
        let g = triangle();
        let n0 = g.neighbors(VertexId(0));
        assert_eq!(n0.len(), 2);
        let targets: Vec<_> = n0.iter().map(|(v, _)| *v).collect();
        assert!(targets.contains(&VertexId(1)));
        assert!(targets.contains(&VertexId(2)));
    }
}
