//! # euler-graph
//!
//! Graph substrate for the partition-centric Euler circuit library.
//!
//! This crate provides the data structures that every other crate in the
//! workspace builds on:
//!
//! * [`Graph`] — an undirected multigraph with stable [`EdgeId`]s and an
//!   adjacency index, built through [`GraphBuilder`].
//! * [`Csr`] — a compressed sparse row view used by compute kernels.
//! * [`PartitionedGraph`] / [`Partition`] — the partition-centric view used by
//!   the paper: internal vertices, boundary vertices, local edges and remote
//!   edges per partition (§3.1 of the paper).
//! * [`MetaGraph`] — the weighted partition meta-graph over which the Phase-2
//!   merge tree is computed.
//! * Graph property queries (degrees, Eulerian-ness, connectivity) in
//!   [`properties`].
//! * Plain-text edge-list I/O in [`io`], the binary `.ecsr` CSR on-disk
//!   format in [`csr_file`] (see [`format_spec`] for the normative byte
//!   layout), and the pipeline's pluggable input seam in [`source`]
//!   ([`GraphSource`]: in-memory graphs, chunked edge-list files, and the
//!   zero-copy [`MmapCsrSource`] over memory-mapped `.ecsr` files).
//! * Chunked edge streams in [`stream`] ([`EdgeStream`]): every source can
//!   push its edges through a sink in bounded batches, which is how
//!   streaming partitioners run without a resident [`Graph`].
//!
//! The vertex and edge identifier types are 64-bit, matching the paper's
//! memory accounting in numbers of Java `Long`s.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod csr_file;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod local_index;
pub mod metagraph;
pub mod partitioned;
pub mod properties;
pub mod registry;
pub mod source;
pub mod stream;

/// The normative `.ecsr` file-format specification (`docs/FORMAT.md`),
/// rendered here so it versions and link-checks with the code. The reference
/// implementation is [`csr_file`].
#[doc = include_str!("../../../docs/FORMAT.md")]
pub mod format_spec {}

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use csr_file::{write_csr_file, CsrFile, CsrFileError};
pub use error::GraphError;
pub use graph::Graph;
pub use ids::{EdgeId, PartitionId, VertexId};
pub use local_index::{bucket_by_slot, LocalIndex, LocalIndexBufs};
pub use metagraph::{MetaEdge, MetaGraph};
pub use partitioned::{Partition, PartitionAssignment, PartitionedGraph, RemoteEdge};
pub use properties::{
    connected_components, first_odd_vertex, is_connected_on_edges, is_eulerian, odd_vertices,
};
pub use registry::{GraphRegistry, RegisteredGraph};
pub use source::{
    EdgeListEdgeStream, EdgeListFileSource, GraphSource, InMemorySource, MmapCsrSource,
};
pub use stream::{
    CsrFileEdgeStream, EdgeStream, GraphEdgeStream, IdEdgeBatchSink, StreamOrder, StreamSummary,
};
