//! # euler-graph
//!
//! Graph substrate for the partition-centric Euler circuit library.
//!
//! This crate provides the data structures that every other crate in the
//! workspace builds on:
//!
//! * [`Graph`] — an undirected multigraph with stable [`EdgeId`]s and an
//!   adjacency index, built through [`GraphBuilder`].
//! * [`Csr`] — a compressed sparse row view used by compute kernels.
//! * [`PartitionedGraph`] / [`Partition`] — the partition-centric view used by
//!   the paper: internal vertices, boundary vertices, local edges and remote
//!   edges per partition (§3.1 of the paper).
//! * [`MetaGraph`] — the weighted partition meta-graph over which the Phase-2
//!   merge tree is computed.
//! * Graph property queries (degrees, Eulerian-ness, connectivity) in
//!   [`properties`].
//! * Plain-text edge-list I/O in [`io`], and the pipeline's pluggable input
//!   seam in [`source`] ([`GraphSource`]: in-memory graphs, chunked edge-list
//!   files, future mmap/CSR loaders).
//!
//! The vertex and edge identifier types are 64-bit, matching the paper's
//! memory accounting in numbers of Java `Long`s.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod local_index;
pub mod metagraph;
pub mod partitioned;
pub mod properties;
pub mod source;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::GraphError;
pub use graph::Graph;
pub use ids::{EdgeId, PartitionId, VertexId};
pub use local_index::{bucket_by_slot, LocalIndex};
pub use metagraph::{MetaEdge, MetaGraph};
pub use partitioned::{Partition, PartitionAssignment, PartitionedGraph, RemoteEdge};
pub use properties::{connected_components, is_connected_on_edges, is_eulerian, odd_vertices};
pub use source::{EdgeListFileSource, GraphSource, InMemorySource};
