//! Property-based tests for the graph substrate.

use euler_graph::{
    connected_components, io, odd_vertices, properties, Csr, GraphBuilder, PartitionAssignment,
    PartitionedGraph, VertexId,
};
use proptest::prelude::*;

/// Strategy: a random edge list over up to `max_v` vertices.
fn edge_list(max_v: u64, max_e: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

proptest! {
    /// The handshaking lemma: the number of odd-degree vertices is even.
    #[test]
    fn odd_degree_vertex_count_is_even(edges in edge_list(40, 200)) {
        let mut b = GraphBuilder::with_vertices(40);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        prop_assert_eq!(odd_vertices(&g).len() % 2, 0);
    }

    /// Sum of degrees equals twice the edge count.
    #[test]
    fn degree_sum_is_twice_edges(edges in edge_list(30, 150)) {
        let mut b = GraphBuilder::with_vertices(30);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let sum: u64 = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    /// CSR agrees with the adjacency-list graph on every degree and neighbour set.
    #[test]
    fn csr_is_faithful(edges in edge_list(25, 120)) {
        let mut b = GraphBuilder::with_vertices(25);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let csr = Csr::from_graph(&g);
        for v in g.vertices() {
            prop_assert_eq!(csr.degree(v), g.degree(v));
            let mut a: Vec<u64> = g.neighbors(v).iter().map(|(n, _)| n.0).collect();
            let mut c: Vec<u64> = csr.neighbors(v).0.iter().map(|n| n.0).collect();
            a.sort_unstable();
            c.sort_unstable();
            prop_assert_eq!(a, c);
        }
    }

    /// Edge-list serialisation round-trips exactly.
    #[test]
    fn edge_list_io_roundtrip(edges in edge_list(20, 80)) {
        let mut b = GraphBuilder::with_vertices(20);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        let e1: Vec<_> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let e2: Vec<_> = g2.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        prop_assert_eq!(e1, e2);
    }

    /// Partitioning conserves vertices and edges: every vertex lands in exactly
    /// one partition, every edge is either local to one partition or a remote
    /// edge in exactly two.
    #[test]
    fn partitioning_conserves_graph(
        edges in edge_list(30, 150),
        labels in prop::collection::vec(0u32..4, 30),
    ) {
        let mut b = GraphBuilder::with_vertices(30);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let a = PartitionAssignment::from_labels(labels, 4).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();

        let mut vertex_seen = vec![0u32; g.num_vertices() as usize];
        for p in pg.partitions() {
            for v in p.vertices() {
                vertex_seen[v.index()] += 1;
            }
        }
        prop_assert!(vertex_seen.iter().all(|&c| c == 1));

        let local: u64 = pg.partitions().iter().map(|p| p.num_local_edges()).sum();
        let remote: u64 = pg.partitions().iter().map(|p| p.num_remote_edges()).sum();
        prop_assert_eq!(local + remote / 2, g.num_edges());
        prop_assert_eq!(remote % 2, 0);
        prop_assert_eq!(pg.cut_edges(), remote / 2);
    }

    /// Boundary classification: every boundary vertex has at least one remote
    /// edge, every internal vertex has none.
    #[test]
    fn boundary_vertices_have_remote_edges(
        edges in edge_list(24, 100),
        labels in prop::collection::vec(0u32..3, 24),
    ) {
        let mut b = GraphBuilder::with_vertices(24);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let a = PartitionAssignment::from_labels(labels, 3).unwrap();
        let pg = PartitionedGraph::from_assignment(&g, &a).unwrap();
        for p in pg.partitions() {
            let rdeg = p.remote_degrees();
            for &v in &p.boundary {
                prop_assert!(rdeg.get(&v).copied().unwrap_or(0) > 0);
            }
            for &v in &p.internal {
                prop_assert_eq!(rdeg.get(&v).copied().unwrap_or(0), 0);
            }
        }
    }

    /// Connected-component labels are consistent with edges: both endpoints of
    /// every edge share a label.
    #[test]
    fn component_labels_respect_edges(edges in edge_list(30, 100)) {
        let mut b = GraphBuilder::with_vertices(30);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let (labels, count) = connected_components(&g);
        prop_assert!(count >= 1 || g.num_vertices() == 0);
        for (_, u, v) in g.edges() {
            prop_assert_eq!(labels[u.index()], labels[v.index()]);
        }
    }

    /// `is_eulerian` accepts exactly the graphs with all-even degrees and one
    /// edge-bearing component.
    #[test]
    fn is_eulerian_matches_definition(edges in edge_list(16, 60)) {
        let mut b = GraphBuilder::with_vertices(16);
        b.extend_edges(edges);
        let g = b.build().unwrap();
        let even = g.vertices().all(|v| g.degree(v).is_multiple_of(2));
        let one_comp = properties::non_trivial_components(&g) <= 1;
        prop_assert_eq!(properties::is_eulerian(&g).is_ok(), even && one_comp);
    }
}

#[test]
fn partition_of_out_of_range_vertex_panics_is_not_required() {
    // Deterministic companion test: assignments built from labels expose
    // partition_of for valid vertices only; check a valid lookup.
    let a = PartitionAssignment::from_labels(vec![0, 1, 0], 2).unwrap();
    assert_eq!(a.partition_of(VertexId(1)).0, 1);
}
