//! Parallel R-MAT graph generator.
//!
//! The paper generates its inputs with a parallel RMAT tool (default
//! parameters, average undirected degree 5) and then Eulerizes them. This
//! module reproduces that recipe: the recursive-matrix model of Chakrabarti et
//! al. with the classic `(a, b, c, d) = (0.57, 0.19, 0.19, 0.05)` quadrant
//! probabilities, generated in parallel with rayon, one chunk per worker, each
//! chunk seeded deterministically from the generator seed.

use euler_graph::{Graph, GraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration for the R-MAT generator.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RmatGenerator {
    /// log2 of the number of vertices (the R-MAT "scale").
    pub scale: u32,
    /// Average undirected degree; the number of generated edges is
    /// `avg_degree * 2^scale / 2` before de-duplication of self-loops.
    pub avg_degree: f64,
    /// Quadrant probability a (top-left).
    pub a: f64,
    /// Quadrant probability b (top-right).
    pub b: f64,
    /// Quadrant probability c (bottom-left).
    pub c: f64,
    /// Random seed.
    pub seed: u64,
    /// Skip self-loops (retries the edge). The paper's Eulerian conversion
    /// works on simple-ish multigraphs; self-loops are legal but add no
    /// routing value, so they are skipped by default.
    pub skip_self_loops: bool,
}

impl Default for RmatGenerator {
    fn default() -> Self {
        RmatGenerator {
            scale: 14,
            avg_degree: 5.0,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 42,
            skip_self_loops: true,
        }
    }
}

impl RmatGenerator {
    /// Creates a generator for `2^scale` vertices with the default R-MAT
    /// skew parameters and average undirected degree 5 (the paper's setting).
    pub fn new(scale: u32) -> Self {
        RmatGenerator { scale, ..Default::default() }
    }

    /// Sets the average undirected degree.
    pub fn with_avg_degree(mut self, d: f64) -> Self {
        self.avg_degree = d;
        self
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of vertices this generator will produce.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of undirected edges this generator will produce.
    pub fn num_edges(&self) -> u64 {
        (self.avg_degree * self.num_vertices() as f64 / 2.0).round() as u64
    }

    /// Probability of the fourth quadrant.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Generates the graph, in parallel across rayon workers.
    pub fn generate(&self) -> Graph {
        let n_edges = self.num_edges() as usize;
        let n_vertices = self.num_vertices();
        let chunk = 1usize << 14;
        let n_chunks = n_edges.div_ceil(chunk.max(1)).max(1);
        let edges: Vec<(u64, u64)> = (0..n_chunks)
            .into_par_iter()
            .flat_map_iter(|ci| {
                let mut rng = ChaCha8Rng::seed_from_u64(self.seed.wrapping_add(ci as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let lo = ci * chunk;
                let hi = ((ci + 1) * chunk).min(n_edges);
                let mut out = Vec::with_capacity(hi - lo);
                for _ in lo..hi {
                    out.push(self.sample_edge(&mut rng, n_vertices));
                }
                out.into_iter()
            })
            .collect();
        let mut b = GraphBuilder::with_vertices(n_vertices).with_edge_capacity(edges.len());
        b.extend_edges(edges);
        b.build().expect("generated vertex ids are always in range")
    }

    /// Samples one edge by recursive quadrant descent.
    fn sample_edge<R: Rng>(&self, rng: &mut R, n: u64) -> (u64, u64) {
        if n <= 1 {
            return (0, 0);
        }
        loop {
            let mut u = 0u64;
            let mut v = 0u64;
            let mut half = n / 2;
            while half >= 1 {
                let r: f64 = rng.gen();
                let (du, dv) = if r < self.a {
                    (0, 0)
                } else if r < self.a + self.b {
                    (0, 1)
                } else if r < self.a + self.b + self.c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u += du * half;
                v += dv * half;
                if half == 1 {
                    break;
                }
                half /= 2;
            }
            if self.skip_self_loops && u == v {
                continue;
            }
            return (u, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_sizes() {
        let gen = RmatGenerator::new(8).with_seed(7);
        let g = gen.generate();
        assert_eq!(g.num_vertices(), 256);
        assert_eq!(g.num_edges(), gen.num_edges());
        assert_eq!(g.num_edges(), (5.0 * 256.0 / 2.0) as u64);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = RmatGenerator::new(7).with_seed(99).generate();
        let b = RmatGenerator::new(7).with_seed(99).generate();
        let ea: Vec<_> = a.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let eb: Vec<_> = b.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RmatGenerator::new(7).with_seed(1).generate();
        let b = RmatGenerator::new(7).with_seed(2).generate();
        let ea: Vec<_> = a.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let eb: Vec<_> = b.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn no_self_loops_by_default() {
        let g = RmatGenerator::new(8).with_seed(3).generate();
        assert!(g.edges().all(|(_, u, v)| u != v));
    }

    #[test]
    fn skew_produces_hub_vertices() {
        // With the default skewed quadrant probabilities, low-id vertices
        // should have far higher degree than the median vertex.
        let g = RmatGenerator::new(10).with_seed(11).generate();
        let max_deg = g.vertices().map(|v| g.degree(v)).max().unwrap();
        let mut degs: Vec<u64> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        let median = degs[degs.len() / 2];
        assert!(max_deg > 10 * median.max(1), "max {max_deg} median {median}");
    }

    #[test]
    fn quadrant_probabilities_sum_to_one() {
        let gen = RmatGenerator::default();
        assert!((gen.a + gen.b + gen.c + gen.d() - 1.0).abs() < 1e-12);
    }
}
