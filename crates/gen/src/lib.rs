//! # euler-gen
//!
//! Workload generators for the Euler circuit experiments:
//!
//! * [`rmat`] — a parallel R-MAT power-law graph generator (the paper's input
//!   graphs are produced by an RMAT tool with average undirected degree 5).
//! * [`eulerize`](mod@eulerize) — the paper's custom "Eulerizer": adds edges between
//!   odd-degree vertices so every vertex has even degree, while keeping the
//!   degree distribution close to the original (≈5 % extra edges in practice).
//! * [`degree`] — degree-distribution histograms (Fig. 4).
//! * [`synthetic`] — deterministic Eulerian families used by tests, examples
//!   and benches: cycles, circulant graphs, torus grids, unions of random
//!   cycles, polyhedral wireframes, and the paper's Fig.-1 example graph.
//! * [`configs`] — named graph configurations mirroring the paper's
//!   G20/P2 … G50/P8 inputs, scaled to run on a single host.

#![warn(missing_docs)]

pub mod configs;
pub mod degree;
pub mod eulerize;
pub mod rmat;
pub mod synthetic;

pub use configs::GraphConfig;
pub use degree::DegreeHistogram;
pub use eulerize::{eulerize, EulerizeReport};
pub use rmat::RmatGenerator;
