//! Named graph configurations mirroring the paper's inputs (Table 1).
//!
//! The paper evaluates five Eulerized R-MAT graphs, G20/P2 … G50/P8, with
//! 20–49 M vertices and 212–529 M (bi-directed) edges on an 8-VM cluster.
//! Those sizes target 64 GB-RAM machines; this reproduction runs the same
//! *family* at a configurable scale factor so the whole suite executes on a
//! single host while preserving the ratios that drive the evaluation:
//! vertices per partition, average degree ≈5, partition counts 2/3/4/8/8.

use crate::eulerize::{eulerize, EulerizeReport};
use crate::rmat::RmatGenerator;
use euler_graph::Graph;
use serde::{Deserialize, Serialize};

/// A named graph configuration of the paper's G-family.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct GraphConfig {
    /// Paper name, e.g. `"G20/P2"`.
    pub name: &'static str,
    /// Number of vertices in the *paper's* input (millions).
    pub paper_vertices_m: f64,
    /// Number of bi-directed edges in the paper's input (millions).
    pub paper_edges_m: f64,
    /// Number of partitions used by the paper for this input.
    pub partitions: u32,
    /// R-MAT scale (log2 vertices) used in this reproduction at scale 1.0.
    pub base_scale: u32,
    /// Seed for the generator.
    pub seed: u64,
}

/// The five configurations of Table 1.
pub const PAPER_CONFIGS: [GraphConfig; 5] = [
    GraphConfig { name: "G20/P2", paper_vertices_m: 20.0, paper_edges_m: 212.0, partitions: 2, base_scale: 16, seed: 20 },
    GraphConfig { name: "G30/P3", paper_vertices_m: 30.0, paper_edges_m: 318.0, partitions: 3, base_scale: 17, seed: 30 },
    GraphConfig { name: "G40/P4", paper_vertices_m: 40.0, paper_edges_m: 423.0, partitions: 4, base_scale: 17, seed: 40 },
    GraphConfig { name: "G40/P8", paper_vertices_m: 40.0, paper_edges_m: 423.0, partitions: 8, base_scale: 17, seed: 40 },
    GraphConfig { name: "G50/P8", paper_vertices_m: 49.0, paper_edges_m: 529.0, partitions: 8, base_scale: 18, seed: 50 },
];

impl GraphConfig {
    /// Looks a configuration up by its paper name (e.g. `"G50/P8"`).
    pub fn by_name(name: &str) -> Option<GraphConfig> {
        PAPER_CONFIGS.iter().copied().find(|c| c.name == name)
    }

    /// The R-MAT scale after applying `scale_shift` (each step halves or
    /// doubles the vertex count). `scale_shift = 0` gives the default
    /// single-host size (65 K – 262 K vertices); negative values shrink it
    /// further for quick tests.
    pub fn rmat_scale(&self, scale_shift: i32) -> u32 {
        let s = self.base_scale as i64 + scale_shift as i64;
        s.clamp(6, 26) as u32
    }

    /// Generates the Eulerized graph for this configuration.
    ///
    /// Returns the graph together with the Eulerizer report (extra-edge
    /// fraction, as in Fig. 4 / §4.2).
    pub fn generate(&self, scale_shift: i32) -> (Graph, EulerizeReport) {
        let rmat = RmatGenerator::new(self.rmat_scale(scale_shift))
            .with_avg_degree(5.0)
            .with_seed(self.seed);
        let raw = rmat.generate();
        eulerize(&raw)
    }

    /// Generates the raw (pre-Eulerization) R-MAT graph, needed by the Fig.-4
    /// harness to overlay both distributions.
    pub fn generate_raw(&self, scale_shift: i32) -> Graph {
        RmatGenerator::new(self.rmat_scale(scale_shift))
            .with_avg_degree(5.0)
            .with_seed(self.seed)
            .generate()
    }

    /// Vertices per partition in the paper (the weak-scaling ratio: ≈10 M per
    /// VM for G20/P2, G30/P3, G40/P4).
    pub fn paper_vertices_per_partition_m(&self) -> f64 {
        self.paper_vertices_m / self.partitions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::is_eulerian;

    #[test]
    fn all_five_configs_present() {
        assert_eq!(PAPER_CONFIGS.len(), 5);
        let names: Vec<_> = PAPER_CONFIGS.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["G20/P2", "G30/P3", "G40/P4", "G40/P8", "G50/P8"]);
    }

    #[test]
    fn lookup_by_name() {
        let c = GraphConfig::by_name("G40/P8").unwrap();
        assert_eq!(c.partitions, 8);
        assert!(GraphConfig::by_name("G99/P9").is_none());
    }

    #[test]
    fn weak_scaling_ratio_matches_paper() {
        // G20/P2, G30/P3, G40/P4 all have ~10M vertices per partition.
        for name in ["G20/P2", "G30/P3", "G40/P4"] {
            let c = GraphConfig::by_name(name).unwrap();
            assert!((c.paper_vertices_per_partition_m() - 10.0).abs() <= 0.5, "{name}");
        }
    }

    #[test]
    fn scale_shift_clamps() {
        let c = GraphConfig::by_name("G20/P2").unwrap();
        assert_eq!(c.rmat_scale(0), 16);
        assert_eq!(c.rmat_scale(-8), 8);
        assert_eq!(c.rmat_scale(-100), 6);
        assert_eq!(c.rmat_scale(100), 26);
    }

    #[test]
    fn generated_config_graph_is_eulerian() {
        let c = GraphConfig::by_name("G20/P2").unwrap();
        let (g, report) = c.generate(-8); // tiny version for the unit test
        assert!(is_eulerian(&g).is_ok());
        assert!(report.final_edges >= report.original_edges);
        assert!(g.num_vertices() >= 256);
    }

    #[test]
    fn raw_graph_differs_from_eulerized() {
        let c = GraphConfig::by_name("G30/P3").unwrap();
        let raw = c.generate_raw(-9);
        let (e, _) = c.generate(-9);
        assert!(e.num_edges() >= raw.num_edges());
    }
}
