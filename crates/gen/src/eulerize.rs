//! The Eulerizer: converts an arbitrary graph into an Eulerian one.
//!
//! The paper's custom tool "adds additional edges between vertices that have
//! an odd degree, to make the graph Eulerian", while keeping the degree
//! distribution of the modified graph close to the original (Fig. 4); in
//! practice the extra edges amount to ≈5 % of the graph.
//!
//! This module reproduces that tool. Odd-degree vertices are paired up and an
//! edge is added between the vertices of each pair. To keep the degree
//! distribution close to the original, pairing prefers vertices of similar
//! degree (sorting odd vertices by degree and pairing neighbours in that
//! order) — a hub gains one edge and a leaf gains one edge, rather than
//! creating artificial hub-to-leaf shortcuts that distort the tail of the
//! distribution. Optionally the resulting graph can also be connected (the
//! Euler circuit requires all edges in one component) by adding *pairs* of
//! edges between components, which preserves the even-degree invariant.

use euler_graph::{odd_vertices, properties, Graph, VertexId};
use serde::{Deserialize, Serialize};

/// Statistics about one Eulerization run.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct EulerizeReport {
    /// Number of odd-degree vertices found in the input.
    pub odd_vertices: u64,
    /// Edges added to fix parity (one per pair of odd vertices).
    pub parity_edges_added: u64,
    /// Edges added to connect components (always an even count).
    pub connectivity_edges_added: u64,
    /// Edge count of the input graph.
    pub original_edges: u64,
    /// Edge count of the output graph.
    pub final_edges: u64,
}

impl EulerizeReport {
    /// Fraction of extra edges relative to the original edge count (the paper
    /// reports ≈5 %).
    pub fn extra_edge_fraction(&self) -> f64 {
        if self.original_edges == 0 {
            0.0
        } else {
            (self.final_edges - self.original_edges) as f64 / self.original_edges as f64
        }
    }
}

/// Options for [`eulerize_with`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct EulerizeOptions {
    /// Also connect edge-bearing components so a single circuit exists.
    pub connect_components: bool,
}

impl Default for EulerizeOptions {
    fn default() -> Self {
        EulerizeOptions { connect_components: true }
    }
}

/// Eulerizes `g` with default options (parity fix + connectivity fix).
pub fn eulerize(g: &Graph) -> (Graph, EulerizeReport) {
    eulerize_with(g, EulerizeOptions::default())
}

/// Eulerizes `g`: adds edges pairing odd-degree vertices so that every vertex
/// has even degree, and (optionally) adds edge pairs between edge-bearing
/// components so all edges lie in one component.
pub fn eulerize_with(g: &Graph, opts: EulerizeOptions) -> (Graph, EulerizeReport) {
    let mut out = g.clone();
    let mut report = EulerizeReport {
        original_edges: g.num_edges(),
        ..Default::default()
    };

    // 1. Parity: pair odd-degree vertices, preferring similar degrees so the
    //    degree distribution shifts by at most one per vertex.
    let mut odd: Vec<VertexId> = odd_vertices(g);
    report.odd_vertices = odd.len() as u64;
    odd.sort_by_key(|&v| (g.degree(v), v));
    for pair in odd.chunks_exact(2) {
        out.add_edge(pair[0], pair[1]).expect("odd vertices are valid");
        report.parity_edges_added += 1;
    }

    // 2. Connectivity: link edge-bearing components with *pairs* of edges so
    //    parity is preserved. Components are chained onto the first one.
    if opts.connect_components {
        let (labels, count) = properties::connected_components(&out);
        let mut representative: Vec<Option<VertexId>> = vec![None; count];
        for (_, u, _) in out.edges() {
            let c = labels[u.index()] as usize;
            if representative[c].is_none() {
                representative[c] = Some(u);
            }
        }
        let reps: Vec<VertexId> = representative.into_iter().flatten().collect();
        for w in reps.windows(2) {
            out.add_edge(w[0], w[1]).expect("representatives are valid");
            out.add_edge(w[0], w[1]).expect("representatives are valid");
            report.connectivity_edges_added += 2;
        }
    }

    report.final_edges = out.num_edges();
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::builder::graph_from_edges;
    use euler_graph::is_eulerian;

    #[test]
    fn path_graph_becomes_eulerian() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let (e, report) = eulerize(&g);
        assert!(is_eulerian(&e).is_ok());
        assert_eq!(report.odd_vertices, 2);
        assert_eq!(report.parity_edges_added, 1);
        assert_eq!(e.num_edges(), 4);
    }

    #[test]
    fn already_eulerian_graph_untouched() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let (e, report) = eulerize(&g);
        assert_eq!(e.num_edges(), g.num_edges());
        assert_eq!(report.parity_edges_added, 0);
        assert_eq!(report.connectivity_edges_added, 0);
        assert_eq!(report.extra_edge_fraction(), 0.0);
    }

    #[test]
    fn disconnected_components_are_joined() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let (e, report) = eulerize(&g);
        assert!(is_eulerian(&e).is_ok());
        assert_eq!(report.connectivity_edges_added, 2);
    }

    #[test]
    fn connectivity_fix_can_be_disabled() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let (e, report) = eulerize_with(&g, EulerizeOptions { connect_components: false });
        assert_eq!(report.connectivity_edges_added, 0);
        assert!(is_eulerian(&e).is_err());
        assert!(euler_graph::properties::all_degrees_even(&e));
    }

    #[test]
    fn star_graph_parity_fixed() {
        // Star with centre 0 and 5 leaves: centre has odd degree 5, all leaves odd degree 1.
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let (e, report) = eulerize(&g);
        assert!(is_eulerian(&e).is_ok());
        assert_eq!(report.odd_vertices, 6);
        assert_eq!(report.parity_edges_added, 3);
    }

    #[test]
    fn degree_shift_is_at_most_one_per_parity_edge() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (e, _) = eulerize(&g);
        for v in g.vertices() {
            assert!(e.degree(v) >= g.degree(v));
            assert!(e.degree(v) <= g.degree(v) + 2, "vertex {v} grew too much");
        }
    }

    #[test]
    fn report_extra_fraction_small_for_rmat_like_input() {
        use crate::rmat::RmatGenerator;
        let g = RmatGenerator::new(10).with_seed(5).generate();
        let (e, report) = eulerize(&g);
        assert!(is_eulerian(&e).is_ok());
        // The paper observes ~5 % extra edges; allow a generous bound here.
        assert!(report.extra_edge_fraction() < 0.60, "fraction {}", report.extra_edge_fraction());
        assert!(report.final_edges > report.original_edges);
    }
}
