//! Deterministic and randomised Eulerian graph families.
//!
//! These are used throughout the test suites, examples and benches as inputs
//! whose Eulerian-ness (and often structure) is known by construction:
//!
//! * [`cycle`] — the n-cycle, the simplest Eulerian graph.
//! * [`circulant`] — circulant graphs `C_n(s_1..s_k)`; even-regular and
//!   connected for suitable offsets.
//! * [`torus_grid`] — a wrap-around grid where every vertex has degree 4
//!   (a stylised city street network, the paper's route-planning motivation).
//! * [`random_cycle_union`] — the union of many random cycles; Eulerian by
//!   construction with tunable density.
//! * [`octahedron`] / [`icosahedron`] — polyhedral wireframes with even
//!   degrees (4 and ... the icosahedron has degree 5, so it is Eulerized),
//!   matching the DNA-rendering motivation of the paper's introduction.
//! * [`paper_fig1`] — the exact 14-vertex, 4-partition worked example of
//!   Fig. 1, with its partition assignment.

use euler_graph::{Graph, GraphBuilder, PartitionAssignment};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The cycle graph on `n >= 3` vertices.
pub fn cycle(n: u64) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n);
    }
    b.build().expect("cycle edges always valid")
}

/// The circulant graph `C_n(offsets)`: vertex `i` is joined to `i ± s` for
/// every offset `s`. With `k` offsets (none equal to `n/2`), the graph is
/// `2k`-regular, hence Eulerian when connected.
pub fn circulant(n: u64, offsets: &[u64]) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::with_vertices(n);
    for &s in offsets {
        assert!(s >= 1 && s < n, "offset must be in 1..n");
        assert!(2 * s != n, "offset n/2 would create odd degree");
        for i in 0..n {
            b.add_edge(i, (i + s) % n);
        }
    }
    b.build().expect("circulant edges always valid")
}

/// A `rows × cols` torus grid: every vertex joined to its 4 wrap-around
/// neighbours, so every vertex has degree 4 and the graph is Eulerian and
/// connected. Models a regular street network.
pub fn torus_grid(rows: u64, cols: u64) -> Graph {
    assert!(rows >= 2 && cols >= 2, "torus needs at least 2x2");
    let idx = |r: u64, c: u64| r * cols + c;
    let mut b = GraphBuilder::with_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build().expect("torus edges always valid")
}

/// The union of `num_cycles` random cycles over `n` vertices, each of length
/// `cycle_len`. Every vertex touched by a cycle gains even degree, so the
/// graph has all-even degrees by construction (it may be disconnected; pass
/// it through the Eulerizer or pick enough cycles to connect it).
pub fn random_cycle_union(n: u64, num_cycles: usize, cycle_len: usize, seed: u64) -> Graph {
    assert!(n >= 3 && cycle_len >= 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_vertices(n);
    let all: Vec<u64> = (0..n).collect();
    for _ in 0..num_cycles {
        let verts: Vec<u64> = all
            .choose_multiple(&mut rng, cycle_len.min(n as usize))
            .copied()
            .collect();
        for i in 0..verts.len() {
            b.add_edge(verts[i], verts[(i + 1) % verts.len()]);
        }
    }
    b.build().expect("cycle union edges always valid")
}

/// A connected random Eulerian graph: a Hamiltonian backbone cycle over all
/// `n` vertices plus `extra_cycles` random cycles. Connected and all-even by
/// construction — the workhorse input for property tests.
pub fn random_eulerian_connected(n: u64, extra_cycles: usize, cycle_len: usize, seed: u64) -> Graph {
    assert!(n >= 3);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut order: Vec<u64> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..order.len() {
        b.add_edge(order[i], order[(i + 1) % order.len()]);
    }
    let all: Vec<u64> = (0..n).collect();
    for _ in 0..extra_cycles {
        let verts: Vec<u64> = all
            .choose_multiple(&mut rng, cycle_len.min(n as usize).max(3))
            .copied()
            .collect();
        for i in 0..verts.len() {
            b.add_edge(verts[i], verts[(i + 1) % verts.len()]);
        }
    }
    b.build().expect("edges always valid")
}

/// A star of cycles — the `mergeInto` splice-storm workload: a core cycle
/// `c_0..c_{k-1}` with one triangle "petal" `(c_i, p_i, q_i)` hanging off
/// every core vertex. All degrees are even (core vertices 4, petal vertices
/// 2), the graph is connected, `3k` vertices and `4k` edges.
///
/// Run single-partition, Phase 1's first traversal consumes the core plus
/// whatever petals it can reach greedily; every remaining petal then walks
/// as a 3-cycle whose only shared vertex is its hub `c_i`, so each one is an
/// internal cycle spliced into the *same* pending fragment. With a
/// `Vec::splice` tour this costs Θ(k) tail-shifting per merge — Θ(k²)
/// total — while the splice-order index links each petal in O(1)+O(3).
pub fn star_of_cycles(k: u64) -> Graph {
    assert!(k >= 3, "the core cycle needs at least 3 vertices");
    let mut b = GraphBuilder::with_vertices(3 * k);
    for i in 0..k {
        b.add_edge(i, (i + 1) % k);
    }
    for i in 0..k {
        let (p, q) = (k + 2 * i, k + 2 * i + 1);
        b.add_edge(i, p);
        b.add_edge(p, q);
        b.add_edge(q, i);
    }
    b.build().expect("star-of-cycles edges always valid")
}

/// The octahedron wireframe: 6 vertices, 12 edges, 4-regular — the smallest
/// platonic solid whose skeleton is Eulerian (used by the DNA-rendering
/// example).
pub fn octahedron() -> Graph {
    // Vertices: 0=+x 1=-x 2=+y 3=-y 4=+z 5=-z; every pair except antipodes.
    let mut b = GraphBuilder::with_vertices(6);
    let antipode = [1u64, 0, 3, 2, 5, 4];
    for u in 0..6u64 {
        for v in (u + 1)..6u64 {
            if antipode[u as usize] != v {
                b.add_edge(u, v);
            }
        }
    }
    b.build().expect("octahedron edges valid")
}

/// The icosahedron wireframe: 12 vertices, 30 edges, 5-regular. Its skeleton
/// is *not* Eulerian (odd degree); callers typically pass it through the
/// Eulerizer, which is exactly the DNA-rendering workflow of the paper's
/// reference \[7\].
pub fn icosahedron() -> Graph {
    // Standard icosahedron adjacency (vertex ids 0..11).
    let edges: [(u64, u64); 30] = [
        (0, 1), (0, 2), (0, 3), (0, 4), (0, 5),
        (1, 2), (2, 3), (3, 4), (4, 5), (5, 1),
        (1, 6), (1, 7), (2, 7), (2, 8), (3, 8),
        (3, 9), (4, 9), (4, 10), (5, 10), (5, 6),
        (6, 7), (7, 8), (8, 9), (9, 10), (10, 6),
        (6, 11), (7, 11), (8, 11), (9, 11), (10, 11),
    ];
    let mut b = GraphBuilder::with_vertices(12);
    b.extend_edges(edges.iter().copied());
    b.build().expect("icosahedron edges valid")
}

/// The worked example of the paper's Fig. 1a: 14 vertices, 16 edges, 4
/// partitions. Vertex `v_k` of the paper is vertex `k-1` here. Returns the
/// graph and the partition assignment `P1..P4 -> 0..3`.
pub fn paper_fig1() -> (Graph, PartitionAssignment) {
    let edges = [
        (1u64, 2u64), (2, 3), (3, 4), (4, 5), (3, 5), (3, 13), (12, 13), (11, 12),
        (6, 11), (6, 7), (7, 8), (8, 9), (9, 10), (10, 12), (12, 14), (1, 14),
    ];
    let mut b = GraphBuilder::with_vertices(14);
    b.extend_edges(edges.iter().map(|&(u, v)| (u - 1, v - 1)));
    let g = b.build().expect("fig1 edges valid");
    // P1 = {v1, v2, v14}, P2 = {v3, v4, v5}, P3 = {v6..v9}, P4 = {v10..v13}.
    let labels = vec![0, 0, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 0];
    let assignment = PartitionAssignment::from_labels(labels, 4).expect("4 partitions");
    (g, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use euler_graph::{is_eulerian, odd_vertices, properties};

    #[test]
    fn cycle_is_eulerian() {
        let g = cycle(10);
        assert_eq!(g.num_edges(), 10);
        assert!(is_eulerian(&g).is_ok());
    }

    #[test]
    fn circulant_is_even_regular() {
        let g = circulant(11, &[1, 2, 3]);
        assert!(is_eulerian(&g).is_ok());
        for v in g.vertices() {
            assert_eq!(g.degree(v), 6);
        }
    }

    #[test]
    #[should_panic(expected = "offset n/2")]
    fn circulant_rejects_half_offset() {
        circulant(10, &[5]);
    }

    #[test]
    fn torus_grid_is_4_regular_and_eulerian() {
        let g = torus_grid(5, 7);
        assert_eq!(g.num_vertices(), 35);
        assert_eq!(g.num_edges(), 70);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_eulerian(&g).is_ok());
    }

    #[test]
    fn random_cycle_union_has_even_degrees() {
        let g = random_cycle_union(50, 10, 6, 123);
        assert!(odd_vertices(&g).is_empty());
    }

    #[test]
    fn random_eulerian_connected_is_eulerian() {
        for seed in 0..5 {
            let g = random_eulerian_connected(40, 6, 5, seed);
            assert!(is_eulerian(&g).is_ok(), "seed {seed}");
        }
    }

    #[test]
    fn star_of_cycles_is_eulerian_with_expected_shape() {
        let g = star_of_cycles(12);
        assert_eq!(g.num_vertices(), 36);
        assert_eq!(g.num_edges(), 48);
        for v in 0..12u64 {
            assert_eq!(g.degree(euler_graph::VertexId(v)), 4, "core vertex {v}");
        }
        for v in 12..36u64 {
            assert_eq!(g.degree(euler_graph::VertexId(v)), 2, "petal vertex {v}");
        }
        assert!(is_eulerian(&g).is_ok());
    }

    #[test]
    fn octahedron_is_eulerian() {
        let g = octahedron();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 12);
        assert!(is_eulerian(&g).is_ok());
    }

    #[test]
    fn icosahedron_is_5_regular_not_eulerian() {
        let g = icosahedron();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 30);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 5, "vertex {v}");
        }
        assert!(is_eulerian(&g).is_err());
        assert!(properties::is_connected_on_edges(&g));
    }

    #[test]
    fn fig1_matches_paper_counts() {
        let (g, a) = paper_fig1();
        assert_eq!(g.num_vertices(), 14);
        assert_eq!(g.num_edges(), 16);
        assert!(is_eulerian(&g).is_ok());
        assert_eq!(a.num_partitions(), 4);
        assert_eq!(a.partition_sizes(), vec![3, 3, 4, 4]);
    }

    #[test]
    fn deterministic_generators_are_reproducible() {
        let a = random_eulerian_connected(30, 4, 5, 7);
        let b = random_eulerian_connected(30, 4, 5, 7);
        let ea: Vec<_> = a.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        let eb: Vec<_> = b.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        assert_eq!(ea, eb);
    }
}
