//! Degree-distribution histograms (Fig. 4).
//!
//! Fig. 4 of the paper overlays the degree distribution of the raw R-MAT
//! graph and its Eulerized counterpart to show that the Eulerizer barely
//! perturbs the distribution. [`DegreeHistogram`] computes the same
//! `degree → number of vertices` mapping and simple similarity measures.

use euler_graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Histogram of vertex degrees: `degree -> number of vertices with that degree`.
#[derive(Clone, Debug, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct DegreeHistogram {
    counts: BTreeMap<u64, u64>,
    num_vertices: u64,
}

impl DegreeHistogram {
    /// Computes the histogram of `g`.
    pub fn of(g: &Graph) -> Self {
        let mut counts = BTreeMap::new();
        for v in g.vertices() {
            *counts.entry(g.degree(v)).or_insert(0) += 1;
        }
        DegreeHistogram { counts, num_vertices: g.num_vertices() }
    }

    /// Number of vertices with exactly `degree`.
    pub fn count(&self, degree: u64) -> u64 {
        self.counts.get(&degree).copied().unwrap_or(0)
    }

    /// Maximum degree present.
    pub fn max_degree(&self) -> u64 {
        self.counts.keys().last().copied().unwrap_or(0)
    }

    /// Mean degree.
    pub fn mean_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            return 0.0;
        }
        let sum: u64 = self.counts.iter().map(|(d, c)| d * c).sum();
        sum as f64 / self.num_vertices as f64
    }

    /// Iterator over `(degree, count)` pairs in degree order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&d, &c)| (d, c))
    }

    /// Number of distinct degrees.
    pub fn num_bins(&self) -> usize {
        self.counts.len()
    }

    /// Total variation distance between two histograms viewed as probability
    /// distributions over degrees: `0` means identical, `1` means disjoint.
    /// Fig. 4's claim is that the Eulerized distribution is very close to the
    /// original; this gives a single-number check of that claim.
    pub fn total_variation_distance(&self, other: &DegreeHistogram) -> f64 {
        if self.num_vertices == 0 || other.num_vertices == 0 {
            return if self.num_vertices == other.num_vertices { 0.0 } else { 1.0 };
        }
        let mut degrees: Vec<u64> = self.counts.keys().copied().collect();
        degrees.extend(other.counts.keys().copied());
        degrees.sort_unstable();
        degrees.dedup();
        let mut dist = 0.0;
        for d in degrees {
            let p = self.count(d) as f64 / self.num_vertices as f64;
            let q = other.count(d) as f64 / other.num_vertices as f64;
            dist += (p - q).abs();
        }
        dist / 2.0
    }

    /// Buckets the histogram logarithmically (powers of two), which is how
    /// heavy-tailed distributions are usually plotted.
    pub fn log_buckets(&self) -> Vec<(u64, u64)> {
        let mut out: BTreeMap<u64, u64> = BTreeMap::new();
        for (&d, &c) in &self.counts {
            let bucket = if d == 0 { 0 } else { 1u64 << (63 - d.leading_zeros()) };
            *out.entry(bucket).or_insert(0) += c;
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eulerize::eulerize;
    use crate::rmat::RmatGenerator;
    use euler_graph::builder::graph_from_edges;

    #[test]
    fn histogram_of_triangle() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.count(2), 3);
        assert_eq!(h.count(1), 0);
        assert_eq!(h.max_degree(), 2);
        assert!((h.mean_degree() - 2.0).abs() < 1e-12);
        assert_eq!(h.num_bins(), 1);
    }

    #[test]
    fn identical_histograms_have_zero_distance() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 0)]);
        let h1 = DegreeHistogram::of(&g);
        let h2 = DegreeHistogram::of(&g);
        assert_eq!(h1.total_variation_distance(&h2), 0.0);
    }

    #[test]
    fn disjoint_histograms_have_distance_one() {
        let g1 = graph_from_edges(&[(0, 1)]); // all degree 1
        let g2 = graph_from_edges(&[(0, 1), (1, 0)]); // all degree 2
        let h1 = DegreeHistogram::of(&g1);
        let h2 = DegreeHistogram::of(&g2);
        assert!((h1.total_variation_distance(&h2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fig4_shape_eulerized_close_to_original() {
        let g = RmatGenerator::new(11).with_seed(4).generate();
        let (e, _) = eulerize(&g);
        let h_orig = DegreeHistogram::of(&g);
        let h_euler = DegreeHistogram::of(&e);
        let d = h_orig.total_variation_distance(&h_euler);
        // Every vertex degree changes by at most 1-2, so the distributions
        // must remain close (the paper's Fig. 4 overlays them).
        assert!(d < 0.6, "distributions diverged: tvd={d}");
        // Mean degree grows only slightly (≈5 % extra edges in the paper).
        assert!(h_euler.mean_degree() >= h_orig.mean_degree());
        assert!(h_euler.mean_degree() < h_orig.mean_degree() * 1.6);
    }

    #[test]
    fn log_buckets_cover_all_vertices() {
        let g = RmatGenerator::new(9).with_seed(2).generate();
        let h = DegreeHistogram::of(&g);
        let total: u64 = h.log_buckets().iter().map(|(_, c)| c).sum();
        assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn empty_graph_histogram() {
        let g = euler_graph::Graph::empty(0);
        let h = DegreeHistogram::of(&g);
        assert_eq!(h.mean_degree(), 0.0);
        assert_eq!(h.max_degree(), 0);
    }
}
