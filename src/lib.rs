//! # euler-circuit
//!
//! Facade crate for the partition-centric distributed Euler circuit library, a
//! Rust reproduction of *"A Partition-centric Distributed Algorithm for
//! Identifying Euler Circuits in Large Graphs"* (Jaiswal & Simmhan, IEEE
//! IPDPSW/HPBDC 2019).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them under stable module names so applications can depend on a
//! single crate:
//!
//! * [`graph`] — graph substrate (undirected multigraphs, CSR, partitioned
//!   graphs, meta-graphs).
//! * [`gen`] — workload generators (R-MAT, Eulerizer, synthetic Eulerian
//!   families, paper graph configs).
//! * [`partition`] — graph partitioners and partition-quality statistics.
//! * [`bsp`] — the Bulk Synchronous Parallel execution engine used as the
//!   distributed substrate (Apache Spark substitute).
//! * [`algo`] — the partition-centric Euler circuit algorithm itself
//!   (Phases 1–3, merge strategies, memory model, verification).
//! * [`baseline`] — sequential and vertex-centric baselines (Hierholzer,
//!   Fleury, Makki).
//! * [`metrics`] — instrumentation and experiment reporting.
//!
//! ## Quickstart
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! // A small Eulerian graph: two triangles sharing vertex 0.
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! assert!(is_eulerian(&graph).is_ok());
//!
//! // Partition it into 2 parts and run the full partition-centric pipeline.
//! let assignment = LdgPartitioner::new(2).partition(&graph);
//! let config = EulerConfig::default();
//! let result = find_euler_circuit(&graph, &assignment, &config).unwrap();
//!
//! // The circuit uses every edge exactly once and returns to its start.
//! let circuit = result.circuit().expect("graph is Eulerian and connected");
//! assert_eq!(circuit.len(), graph.num_edges() as usize);
//! verify_circuit(&graph, circuit).unwrap();
//! ```

pub use euler_baseline as baseline;
pub use euler_bsp as bsp;
pub use euler_core as algo;
pub use euler_gen as gen;
pub use euler_graph as graph;
pub use euler_metrics as metrics;
pub use euler_partition as partition;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use euler_baseline::{fleury::fleury_circuit, hierholzer::hierholzer_circuit, makki::MakkiRunner};
    pub use euler_core::{
        find_euler_circuit, verify::verify_circuit, CircuitResult, EulerConfig, MergeStrategy,
    };
    pub use euler_gen::{
        configs::GraphConfig, eulerize::eulerize, rmat::RmatGenerator, synthetic,
    };
    pub use euler_graph::{
        builder::graph_from_edges, is_eulerian, Csr, EdgeId, Graph, GraphBuilder, MetaGraph,
        Partition, PartitionAssignment, PartitionId, PartitionedGraph, VertexId,
    };
    pub use euler_partition::{
        BfsPartitioner, HashPartitioner, LdgPartitioner, PartitionQuality, Partitioner,
    };
}
