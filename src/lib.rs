//! # euler-circuit
//!
//! Facade crate for the partition-centric distributed Euler circuit library, a
//! Rust reproduction of *"A Partition-centric Distributed Algorithm for
//! Identifying Euler Circuits in Large Graphs"* (Jaiswal & Simmhan, IEEE
//! IPDPSW/HPBDC 2019).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them under stable module names so applications can depend on a
//! single crate:
//!
//! * [`graph`] — graph substrate (undirected multigraphs, CSR, partitioned
//!   graphs, meta-graphs) and the [`GraphSource`](graph::GraphSource) input
//!   seam (in-memory graphs, chunked edge-list files, and memory-mapped
//!   binary `.ecsr` CSR files via [`MmapCsrSource`](graph::MmapCsrSource) —
//!   byte layout in [`graph::format_spec`]).
//! * [`gen`] — workload generators (R-MAT, Eulerizer, synthetic Eulerian
//!   families, paper graph configs).
//! * [`partition`] — graph partitioners (including one-pass streaming
//!   hash/LDG over chunked edge batches) and partition-quality statistics.
//! * [`bsp`] — the Bulk Synchronous Parallel execution engine used as the
//!   distributed substrate (Apache Spark substitute).
//! * [`algo`] — the partition-centric Euler circuit algorithm itself:
//!   the [`EulerPipeline`](algo::EulerPipeline) builder, the pluggable
//!   [`ExecutionBackend`](algo::ExecutionBackend)s, Phases 1–3, merge
//!   strategies, memory model, verification.
//! * [`baseline`] — sequential and vertex-centric baselines (Hierholzer,
//!   Fleury, Makki).
//! * [`metrics`] — instrumentation and experiment reporting.
//!
//! How the crates map onto the paper's phases and figures — including the
//! dataflow of a pipeline run — is documented in [`architecture`]
//! (docs/ARCHITECTURE.md).
//!
//! ## Quickstart
//!
//! Everything goes through one builder: pick a graph source, a partitioner,
//! a merge strategy and an execution backend, then [`run`](algo::EulerPipeline::run)
//! the pipeline. The result is staged — partition → merge → circuit — with
//! each stage carrying its slice of the run report.
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! // A small Eulerian graph: two triangles sharing vertex 0.
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! assert!(is_eulerian(&graph).is_ok());
//!
//! // Build and run the full partition-centric pipeline on 2 partitions.
//! let run = EulerPipeline::builder()
//!     .graph(&graph)                       // or .source(EdgeListFileSource::new("g.el"))
//!     .partitioner(LdgPartitioner::new(2)) // or .assignment(precomputed)
//!     .strategy(MergeStrategy::Deferred)   // §5 memory heuristic
//!     .backend(InProcessBackend::new())    // or BspBackend::new() for the BSP engine
//!     .verify(true)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // The circuit uses every edge exactly once and returns to its start.
//! let circuit = run.circuit.result.circuit().expect("graph is Eulerian and connected");
//! assert_eq!(circuit.len(), graph.num_edges() as usize);
//! verify_circuit(&graph, circuit).unwrap();
//!
//! // Staged outputs: supersteps, transfers, per-level records.
//! assert_eq!(run.partition.num_partitions, 2);
//! assert_eq!(run.merge.supersteps, 2);
//! let report = run.report(); // the unified RunReport, same for every backend
//! assert_eq!(report.level(0).len(), 2);
//! ```
//!
//! To execute on the BSP engine (serialised transfers, shuffle accounting,
//! modelled Spark-like overhead) swap the backend — nothing else changes:
//!
//! ```
//! use euler_circuit::prelude::*;
//! use euler_circuit::bsp::{BspConfig, PlatformCostModel};
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let run = EulerPipeline::builder()
//!     .graph(&graph)
//!     .partitioner(LdgPartitioner::new(2))
//!     .backend(BspBackend::with_engine(
//!         BspConfig::one_worker_per_partition().with_cost_model(PlatformCostModel::spark_like()),
//!     ))
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! let engine = run.merge.engine.as_ref().expect("BSP runs carry engine stats");
//! assert_eq!(engine.num_supersteps(), run.merge.supersteps);
//! ```
//!
//! ## Out of core: streaming partitioning and bounded fragment memory
//!
//! For graphs that should never be materialised, pair a memory-mapped
//! `.ecsr` source with a *streaming* partitioner and a fragment memory
//! budget. [`LdgPartitioner`](partition::LdgPartitioner) and
//! [`HashPartitioner`](partition::HashPartitioner) implement
//! [`StreamingPartitioner`](partition::StreamingPartitioner): they consume
//! chunked edge batches straight off the mapped sections (identical
//! assignments to the whole-graph path, by construction), the partition
//! view is sliced from the same sections, and `.memory_budget(longs)`
//! bounds resident circuit-fragment memory by paging cold fragments to a
//! temp file — reloaded on demand in Phase 3, bit-identical circuits,
//! spill traffic reported per run. The pipeline derives a Phase-3 read
//! schedule from the merge tree and installs it in the spill store, so
//! eviction is farthest-next-use (Belady-style) rather than FIFO; the
//! policy split shows up in `fragment_stats` as `evictions_scheduled`,
//! `evictions_fifo`, and `reload_longs_avoided` (spill reads a FIFO
//! policy would have paid on the same trace).
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let path = std::env::temp_dir().join("facade_quickstart.ecsr");
//! write_csr_file(&graph, &path).unwrap();
//!
//! let run = EulerPipeline::builder()
//!     .source(MmapCsrSource::open(&path).unwrap()) // zero-copy mmap open
//!     .partitioner(LdgPartitioner::new(2))         // streamed off the mapped CSR
//!     .memory_budget(1 << 20)                      // resident fragment Longs
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // The zero-Graph path is observable in the stage report.
//! assert!(run.partition.partitioner.contains("streamed, direct csr slice"));
//! assert_eq!(run.circuit.result.total_edges(), graph.num_edges());
//! // Real fragment-memory accounting (peak resident, spill counts,
//! // eviction-policy counters). Per-level merge reports additionally
//! // carry the Phase-1 splice-index counters (pivot lookups, linked
//! // splices, materialization longs).
//! assert!(run.circuit.fragment_stats.peak_resident_longs > 0);
//! std::fs::remove_file(&path).ok();
//! ```
//!
//! Custom whole-graph partitioners, BFS-order LDG
//! ([`LdgPartitioner::with_bfs_order`](partition::LdgPartitioner::with_bfs_order))
//! and `.verify(true)` need the resident graph and fall back to the load
//! path automatically.
//!
//! ## Bounded traversal state: the W-streaming Phase 1
//!
//! The direct-slice path above still builds each partition's dense
//! incidence arena before walking it. `.streaming_phase1(true)` removes
//! that last unbounded stage: level-0 tours are built by **one pass** over
//! the source's edge stream with the W-streaming chain machine
//! ([`algo::phase1::wstream`]) — resident traversal state is `O(n log n)`
//! Longs regardless of the edge count, partial tours spill through the
//! fragment store, and the residue rides the ordinary merge-tree walk on
//! any backend. The exact footprint is reported per run:
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let path = std::env::temp_dir().join("facade_wstreaming.ecsr");
//! write_csr_file(&graph, &path).unwrap();
//!
//! let run = EulerPipeline::builder()
//!     .source(MmapCsrSource::open(&path).unwrap())
//!     .partitioner(LdgPartitioner::new(2))
//!     .streaming_phase1(true)  // one-pass tours, O(n log n) resident
//!     .memory_budget(1 << 20)  // fragments stay bounded too
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! assert_eq!(run.circuit.result.total_edges(), graph.num_edges());
//! let stats = run.merge.wstream.expect("streaming runs report resident state");
//! // Peak resident traversal state, in Longs — bounded by O(n log n),
//! // never by the edge count.
//! assert!(stats.peak_resident_longs > 0);
//! assert_eq!(stats.edges_ingested, graph.num_edges());
//! std::fs::remove_file(&path).ok();
//! ```
//!
//! ## Parallelism model
//!
//! How Phase 1 is scheduled onto threads is a backend option,
//! [`Parallelism`](algo::Parallelism):
//!
//! * **`PerPartition`** (default) — a merge level's partitions fan out
//!   across threads, each running the sequential Phase-1 kernel. Fastest at
//!   wide levels; concurrent partitions interleave their fragment-store
//!   appends, so circuit *composition* can differ between runs (transfer
//!   and memory accounting are always deterministic).
//! * **`IntraPartition`** — partitions run one at a time (ascending id) and
//!   the *inside* of each Phase 1 is parallelised by the wave-speculation
//!   walker: workers speculate maximal walks against the committed state
//!   and the main thread commits them in exact sequential order. Output is
//!   **bit-identical to a fully sequential run for every thread count** —
//!   circuits, per-level reports, transfer Longs — which is what the
//!   narrow top levels of the merge tree (one big merged partition) need.
//! * **`Auto`** — per level: `PerPartition` while at least as many live
//!   partitions as threads remain, `IntraPartition` above that.
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let deterministic = |threads: usize| {
//!     EulerPipeline::builder()
//!         .graph(&graph)
//!         .partitioner(LdgPartitioner::new(2))
//!         .backend(
//!             InProcessBackend::new()
//!                 .with_parallelism(Parallelism::IntraPartition)
//!                 .with_threads(threads),
//!         )
//!         .build()
//!         .unwrap()
//!         .run()
//!         .unwrap()
//! };
//! // Any thread count produces the same circuits, edge for edge.
//! let single = deterministic(1);
//! let eight = deterministic(8);
//! assert_eq!(single.circuit.result.circuits, eight.circuit.result.circuits);
//! assert_eq!(single.merge.total_transfer_longs, eight.merge.total_transfer_longs);
//! ```
//!
//! On the BSP backend the same option rides the worker loop:
//! `BspBackend::with_engine(BspConfig::with_workers(1).with_worker_threads(8))
//! .with_parallelism(Parallelism::IntraPartition)` gives each simulated
//! executor an 8-thread budget for the wave walker. Bit-identical circuit
//! *composition* additionally needs the partitions to execute serially —
//! always true in-process; on BSP it needs a single-worker engine, since a
//! multi-worker engine runs its workers' partitions concurrently and their
//! fragment-store appends interleave (each partition's own walks stay
//! deterministic either way, as do transfers and reports). Phase-1 scratch
//! (interning table, CSR incidence arena, cursors, bitsets, speculation
//! overlays) lives in reusable [`Phase1Arena`](algo::Phase1Arena)s drawn
//! from a per-backend pool, so repeated levels stop allocating once the
//! buffers reach the working-set size.
//!
//! ## Distributed: wire transports, process workers, kill-and-resume
//!
//! Give [`BspBackend`](algo::BspBackend) a [`Transport`](bsp::Transport)
//! and the walk runs as a coordinator/worker protocol over length-prefixed,
//! checksummed frames — [`MemTransport`](bsp::MemTransport) (in-memory
//! channels), [`TcpTransport`](bsp::TcpTransport) or
//! [`UnixTransport`](bsp::UnixTransport) (the socket transports also take
//! `.process_workers(true)`: one `euler-worker` OS process per worker,
//! spawned and — after a SIGKILL — respawned by the coordinator). Add
//! `.checkpoint_dir(..)` and a dead worker rolls the fleet back to the
//! checkpoint of the failed superstep instead of replaying from the seeds;
//! either way the final circuit is bit-identical to an unkilled run, for
//! any worker count. [`FaultPolicy`](bsp::FaultPolicy) tunes heartbeats and
//! restart budgets; [`FaultPlan`](bsp::FaultPlan) injects faults for tests.
//!
//! ```
//! use euler_circuit::prelude::*;
//! use std::sync::Arc;
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let ckpt = std::env::temp_dir().join("facade_quickstart_ckpt");
//! let run = EulerPipeline::builder()
//!     .graph(&graph)
//!     .partitioner(LdgPartitioner::new(2))
//!     .backend(
//!         BspBackend::with_engine(BspConfig::with_workers(2))
//!             .with_transport(Arc::new(MemTransport)) // wire frames, thread workers
//!             .checkpoint_dir(&ckpt)                  // superstep rollback on death
//!             .with_fault_plan(FaultPlan::kill_at(1, 0)), // kill worker 1 at superstep 0
//!     )
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // The worker died, was respawned, restored its checkpoint — and the
//! // circuit still uses every edge exactly once.
//! let recovery = run.merge.engine.as_ref().unwrap().recovery;
//! assert!(recovery.restarts >= 1);
//! assert!(!run.merge.warnings.is_empty()); // the recovery is reported
//! verify_circuit(&graph, run.circuit.result.circuit().unwrap()).unwrap();
//! assert!(!ckpt.exists()); // clean completion removes the checkpoint dir
//! ```
//!
//! ## Serving circuits: one process, many graphs, many clients
//!
//! [`EulerService`](algo::EulerService) turns the pipeline into a
//! long-lived TCP server speaking the same checksummed frame codec as the
//! distributed backend: register `.ecsr` graphs by **content checksum**,
//! run circuits for many clients concurrently under one global memory
//! budget — an admission controller keeps the sum of per-run peak
//! estimates from [`algo::memory_model`] under the cap, calibrated by each
//! run's measured peak — cache finished circuits by (graph, options), and
//! stream the steps back in chunks with cooperative cancellation. The
//! `euler-serve` binary wraps the same service for out-of-process use.
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let path = std::env::temp_dir().join("facade_serve_quickstart.ecsr");
//! write_csr_file(&graph, &path).unwrap();
//!
//! let service = EulerService::bind(ServiceConfig {
//!     memory_cap_longs: 1 << 16,
//!     workers: 2,
//!     ..ServiceConfig::default()
//! })
//! .unwrap();
//!
//! // Register: the graph's identity is its content checksum, not its path.
//! let client = ServiceClient::connect(service.endpoint()).unwrap();
//! let info = client.register(path.to_str().unwrap()).unwrap();
//! assert_eq!(info.num_edges, graph.num_edges());
//!
//! // Run: admitted under the cap, computed, streamed back chunk by chunk
//! // and reassembled by the convenience driver.
//! let opts = RunOptions { partitions: 2, ..RunOptions::default() };
//! let run = client.run(info.checksum, opts).unwrap();
//! assert!(!run.cached);
//! let steps: u64 = run.circuits.iter().map(|c| c.len() as u64).sum();
//! assert_eq!(steps, graph.num_edges());
//!
//! // Same graph, same options: a cache hit — no pipeline run, same steps.
//! let again = client.run(info.checksum, opts).unwrap();
//! assert!(again.cached);
//! assert_eq!(again.circuits, run.circuits);
//!
//! // Cancellation is cooperative: the run stops at the next merge-tree
//! // superstep boundary and its admitted budget frees before the stream
//! // ends (a run that already finished streams its chunks instead).
//! let heavier = RunOptions { partitions: 4, strategy: MergeStrategy::Deferred, ..opts };
//! client.start_run(info.checksum, heavier).unwrap();
//! client.cancel().unwrap();
//! loop {
//!     match client.next_event().unwrap() {
//!         RunEvent::Cancelled | RunEvent::Done { .. } => break,
//!         _ => {} // Accepted / Progress / Report / Chunk
//!     }
//! }
//! let stats = service.stats();
//! assert_eq!(stats.runs_cached, 1);
//! assert_eq!(stats.admitted_longs, 0, "terminal event means the budget is free");
//! assert!(stats.peak_admitted_longs <= stats.memory_cap_longs);
//! service.shutdown();
//! std::fs::remove_file(&path).ok();
//! ```
//!
//! ## Migrating from `find_euler_circuit` / `DistributedRunner`
//!
//! The pre-0.2 entry points were deprecated wrappers over the pipeline for
//! one release (their test suites proved behavioural equivalence) and are
//! now **removed**. Migrate as follows:
//!
//! | before (removed) | after |
//! |---|---|
//! | `find_euler_circuit(&g, &a, &cfg)?` | `EulerPipeline::builder().graph(&g).assignment(a).config(cfg).build()?.run()?.into_result()` |
//! | `run_partitioned(&g, &a, &cfg)?` → `(result, report)` | `let run = …run()?;` then `run.circuit.result` / `run.report()` |
//! | `DistributedRunner::new(cfg).with_engine(e).run(&g, &a)?` | `…builder()….backend(BspBackend::with_engine(e))….run()?`; engine stats in `run.merge.engine` |
//! | mid-level, no builder | `algo::pipeline::run_with_backend(&g, &a, &cfg, &backend)` → `(result, RunReport)` |
//! | mid-level, no `Graph` at hand | `algo::pipeline::run_on_partitioned(&pg, &cfg, &backend)` over any [`PartitionedGraph`](graph::PartitionedGraph) (e.g. sliced from a mapped `.ecsr` via [`CsrFile::partitioned`](graph::CsrFile::partitioned)) |
//!
//! The reports also unified: the BSP path fills the same per-level
//! [`RunReport`](algo::RunReport) the in-process path always produced, with
//! the engine's superstep statistics attached as
//! [`RunReport::engine`](algo::RunReport::engine).

/// How the crates map onto the paper (docs/ARCHITECTURE.md), rendered here
/// so it versions and link-checks with the code.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

/// The workspace's own static-analysis rules (docs/LINTS.md): what
/// `euler-lint` enforces, why each rule exists, and how to suppress a
/// finding per-site. Enforced in CI by `cargo run -p euler-lint`.
#[doc = include_str!("../docs/LINTS.md")]
pub mod lint_rules {}

pub use euler_baseline as baseline;
pub use euler_bsp as bsp;
pub use euler_core as algo;
pub use euler_gen as gen;
pub use euler_graph as graph;
pub use euler_metrics as metrics;
pub use euler_partition as partition;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use euler_baseline::{fleury::fleury_circuit, hierholzer::hierholzer_circuit, makki::MakkiRunner};
    pub use euler_bsp::{
        BspConfig, FaultPlan, FaultPolicy, MemTransport, RecoveryStats, TcpTransport, Transport,
        UnixTransport,
    };
    pub use euler_core::{
        run_on_partitioned, run_on_partitioned_cancellable, run_with_backend, stream_phase1,
        verify::verify_circuit, BspBackend, CancelToken, CircuitResult, CircuitStep, EulerConfig,
        EulerPipeline, EulerService, ExecutionBackend, FragmentStoreStats, GraphInfo,
        InProcessBackend, LevelPartitionReport, MergeStrategy, Parallelism, PartitionerKind,
        PipelineRun, RunEvent, RunOptions, RunOutcome, RunReport, ServiceClient, ServiceConfig,
        ServiceError, ServiceHandle, ServiceStats, SpillConfig, WStreamStats,
    };
    pub use euler_gen::{
        configs::GraphConfig, eulerize::eulerize, rmat::RmatGenerator, synthetic,
    };
    pub use euler_graph::{
        builder::graph_from_edges, is_eulerian, write_csr_file, Csr, CsrFile, EdgeId,
        EdgeListFileSource, EdgeStream, Graph, GraphBuilder, GraphRegistry, GraphSource,
        InMemorySource, MetaGraph, MmapCsrSource, Partition, PartitionAssignment, PartitionId,
        PartitionedGraph, StreamOrder, VertexId,
    };
    pub use euler_partition::{
        BfsPartitioner, HashPartitioner, LdgPartitioner, PartitionQuality, Partitioner,
        StreamingPartitioner,
    };
}
