//! # euler-circuit
//!
//! Facade crate for the partition-centric distributed Euler circuit library, a
//! Rust reproduction of *"A Partition-centric Distributed Algorithm for
//! Identifying Euler Circuits in Large Graphs"* (Jaiswal & Simmhan, IEEE
//! IPDPSW/HPBDC 2019).
//!
//! The workspace is organised as one crate per subsystem; this crate
//! re-exports them under stable module names so applications can depend on a
//! single crate:
//!
//! * [`graph`] — graph substrate (undirected multigraphs, CSR, partitioned
//!   graphs, meta-graphs) and the [`GraphSource`](graph::GraphSource) input
//!   seam (in-memory graphs, chunked edge-list files, and memory-mapped
//!   binary `.ecsr` CSR files via [`MmapCsrSource`](graph::MmapCsrSource) —
//!   byte layout in [`graph::format_spec`]).
//! * [`gen`] — workload generators (R-MAT, Eulerizer, synthetic Eulerian
//!   families, paper graph configs).
//! * [`partition`] — graph partitioners and partition-quality statistics.
//! * [`bsp`] — the Bulk Synchronous Parallel execution engine used as the
//!   distributed substrate (Apache Spark substitute).
//! * [`algo`] — the partition-centric Euler circuit algorithm itself:
//!   the [`EulerPipeline`](algo::EulerPipeline) builder, the pluggable
//!   [`ExecutionBackend`](algo::ExecutionBackend)s, Phases 1–3, merge
//!   strategies, memory model, verification.
//! * [`baseline`] — sequential and vertex-centric baselines (Hierholzer,
//!   Fleury, Makki).
//! * [`metrics`] — instrumentation and experiment reporting.
//!
//! How the crates map onto the paper's phases and figures — including the
//! dataflow of a pipeline run — is documented in [`architecture`]
//! (docs/ARCHITECTURE.md).
//!
//! ## Quickstart
//!
//! Everything goes through one builder: pick a graph source, a partitioner,
//! a merge strategy and an execution backend, then [`run`](algo::EulerPipeline::run)
//! the pipeline. The result is staged — partition → merge → circuit — with
//! each stage carrying its slice of the run report.
//!
//! ```
//! use euler_circuit::prelude::*;
//!
//! // A small Eulerian graph: two triangles sharing vertex 0.
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! assert!(is_eulerian(&graph).is_ok());
//!
//! // Build and run the full partition-centric pipeline on 2 partitions.
//! let run = EulerPipeline::builder()
//!     .graph(&graph)                       // or .source(EdgeListFileSource::new("g.el"))
//!     .partitioner(LdgPartitioner::new(2)) // or .assignment(precomputed)
//!     .strategy(MergeStrategy::Deferred)   // §5 memory heuristic
//!     .backend(InProcessBackend::new())    // or BspBackend::new() for the BSP engine
//!     .verify(true)
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//!
//! // The circuit uses every edge exactly once and returns to its start.
//! let circuit = run.circuit.result.circuit().expect("graph is Eulerian and connected");
//! assert_eq!(circuit.len(), graph.num_edges() as usize);
//! verify_circuit(&graph, circuit).unwrap();
//!
//! // Staged outputs: supersteps, transfers, per-level records.
//! assert_eq!(run.partition.num_partitions, 2);
//! assert_eq!(run.merge.supersteps, 2);
//! let report = run.report(); // the unified RunReport, same for every backend
//! assert_eq!(report.level(0).len(), 2);
//! ```
//!
//! To execute on the BSP engine (serialised transfers, shuffle accounting,
//! modelled Spark-like overhead) swap the backend — nothing else changes:
//!
//! ```
//! use euler_circuit::prelude::*;
//! use euler_circuit::bsp::{BspConfig, PlatformCostModel};
//!
//! let graph = graph_from_edges(&[(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
//! let run = EulerPipeline::builder()
//!     .graph(&graph)
//!     .partitioner(LdgPartitioner::new(2))
//!     .backend(BspBackend::with_engine(
//!         BspConfig::one_worker_per_partition().with_cost_model(PlatformCostModel::spark_like()),
//!     ))
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! let engine = run.merge.engine.as_ref().expect("BSP runs carry engine stats");
//! assert_eq!(engine.num_supersteps(), run.merge.supersteps);
//! ```
//!
//! ## Migrating from `find_euler_circuit` / `DistributedRunner`
//!
//! The pre-0.2 entry points were deprecated wrappers over the pipeline for
//! one release (their test suites proved behavioural equivalence) and are
//! now **removed**. Migrate as follows:
//!
//! | before (removed) | after |
//! |---|---|
//! | `find_euler_circuit(&g, &a, &cfg)?` | `EulerPipeline::builder().graph(&g).assignment(a).config(cfg).build()?.run()?.into_result()` |
//! | `run_partitioned(&g, &a, &cfg)?` → `(result, report)` | `let run = …run()?;` then `run.circuit.result` / `run.report()` |
//! | `DistributedRunner::new(cfg).with_engine(e).run(&g, &a)?` | `…builder()….backend(BspBackend::with_engine(e))….run()?`; engine stats in `run.merge.engine` |
//! | mid-level, no builder | `algo::pipeline::run_with_backend(&g, &a, &cfg, &backend)` → `(result, RunReport)` |
//! | mid-level, no `Graph` at hand | `algo::pipeline::run_on_partitioned(&pg, &cfg, &backend)` over any [`PartitionedGraph`](graph::PartitionedGraph) (e.g. sliced from a mapped `.ecsr` via [`CsrFile::partitioned`](graph::CsrFile::partitioned)) |
//!
//! The reports also unified: the BSP path fills the same per-level
//! [`RunReport`](algo::RunReport) the in-process path always produced, with
//! the engine's superstep statistics attached as
//! [`RunReport::engine`](algo::RunReport::engine).

/// How the crates map onto the paper (docs/ARCHITECTURE.md), rendered here
/// so it versions and link-checks with the code.
#[doc = include_str!("../docs/ARCHITECTURE.md")]
pub mod architecture {}

pub use euler_baseline as baseline;
pub use euler_bsp as bsp;
pub use euler_core as algo;
pub use euler_gen as gen;
pub use euler_graph as graph;
pub use euler_metrics as metrics;
pub use euler_partition as partition;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use euler_baseline::{fleury::fleury_circuit, hierholzer::hierholzer_circuit, makki::MakkiRunner};
    pub use euler_core::{
        run_on_partitioned, run_with_backend, verify::verify_circuit, BspBackend, CircuitResult,
        EulerConfig, EulerPipeline, ExecutionBackend, InProcessBackend, MergeStrategy,
        PipelineRun, RunReport,
    };
    pub use euler_gen::{
        configs::GraphConfig, eulerize::eulerize, rmat::RmatGenerator, synthetic,
    };
    pub use euler_graph::{
        builder::graph_from_edges, is_eulerian, write_csr_file, Csr, CsrFile, EdgeId,
        EdgeListFileSource, Graph, GraphBuilder, GraphSource, InMemorySource, MetaGraph,
        MmapCsrSource, Partition, PartitionAssignment, PartitionId, PartitionedGraph, VertexId,
    };
    pub use euler_partition::{
        BfsPartitioner, HashPartitioner, LdgPartitioner, PartitionQuality, Partitioner,
    };
}
