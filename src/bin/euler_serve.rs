//! The long-lived Euler circuit server.
//!
//! ```text
//! euler-serve [--cap-longs N] [--workers N] [--fragment-budget-longs N]
//! ```
//!
//! Binds a loopback TCP listener, prints the endpoint on stdout (the line a
//! supervisor or script parses to hand clients), and serves the
//! `euler_core::service` frame protocol — register `.ecsr` graphs by
//! content checksum, run circuits concurrently under the global memory cap,
//! stream the steps back — until stdin reaches EOF (the conventional
//! "parent went away" signal for a supervised child).
//!
//! All protocol and scheduling logic lives in `euler_core::service`; this
//! binary is argument parsing around [`euler_core::EulerService`].

use euler_core::{EulerService, ServiceConfig};
use std::io::Read;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: euler-serve [--cap-longs <N>] [--workers <N>] [--fragment-budget-longs <N>]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value = args.next();
        match arg.as_str() {
            "--cap-longs" => match value.and_then(|v| v.parse().ok()) {
                Some(v) => config.memory_cap_longs = v,
                None => return usage(),
            },
            "--workers" => match value.and_then(|v| v.parse().ok()) {
                Some(v) => config.workers = v,
                None => return usage(),
            },
            "--fragment-budget-longs" => match value.and_then(|v| v.parse().ok()) {
                Some(v) => config.fragment_budget_longs = v,
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let service = match EulerService::bind(config) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("euler-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", service.endpoint());
    // Serve until the parent closes our stdin.
    let mut sink = [0u8; 256];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    let stats = service.stats();
    service.shutdown();
    eprintln!(
        "euler-serve: {} run(s) executed, {} cached, {} cancelled, peak {} of {} Longs admitted",
        stats.runs_executed,
        stats.runs_cached,
        stats.runs_cancelled,
        stats.peak_admitted_longs,
        stats.memory_cap_longs
    );
    ExitCode::SUCCESS
}
