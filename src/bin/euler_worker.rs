//! The worker-process half of distributed pipeline runs.
//!
//! A coordinator (`BspBackend::with_transport(..).process_workers(true)`)
//! spawns one of these per engine slot:
//!
//! ```text
//! euler-worker --endpoint tcp:127.0.0.1:41234 --worker-id 3
//! ```
//!
//! The process connects back to the coordinator's listener, completes the
//! Hello/Init/Ready handshake, and serves supersteps until shut down (or
//! killed — the coordinator respawns it and restores the last superstep
//! checkpoint). All protocol logic lives in `euler_core::distributed`; this
//! binary is argument parsing around [`euler_core::worker_main`].

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: euler-worker --endpoint <tcp:HOST:PORT | unix:PATH> --worker-id <N>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut endpoint: Option<String> = None;
    let mut worker_id: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--endpoint" => endpoint = args.next(),
            "--worker-id" => worker_id = args.next().and_then(|v| v.parse().ok()),
            _ => return usage(),
        }
    }
    let (Some(endpoint), Some(worker_id)) = (endpoint, worker_id) else {
        return usage();
    };
    match euler_core::worker_main(&endpoint, worker_id) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("euler-worker {worker_id}: {e}");
            ExitCode::FAILURE
        }
    }
}
