//! Offline shim for `criterion`.
//!
//! Runs each benchmark closure `sample_size` times after one warm-up
//! iteration and prints min/mean per iteration. No statistical analysis,
//! HTML reports, or outlier rejection — just honest wall-clock numbers so
//! `cargo bench` works offline with the same bench sources.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in favour
/// of `std::hint::black_box`, which most benches here use directly).
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times of the last `iter` call.
    last: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` repeatedly, timing each run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            times.push(t.elapsed());
        }
        self.last = times;
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: &str, mut body: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { samples: self.sample_size, last: Vec::new() };
        body(&mut b);
        if b.last.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let total: Duration = b.last.iter().sum();
        let mean = total / b.last.len() as u32;
        let min = *b.last.iter().min().expect("non-empty");
        println!(
            "{}/{id}: mean {} min {} ({} samples)",
            self.name,
            fmt_duration(mean),
            fmt_duration(min),
            b.last.len()
        );
        let _ = &self.criterion; // group mutably borrows the runner, as upstream
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id.clone(), f);
        self
    }

    /// Benchmarks `f` with an input value under `id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id.clone(), |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark runner.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
