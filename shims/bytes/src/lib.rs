//! Offline shim for `bytes`.
//!
//! Provides [`Bytes`] (cheaply cloneable, Arc-backed, with a read cursor),
//! [`BytesMut`] and the [`Buf`]/[`BufMut`] traits — only the surface the BSP
//! message codec uses.

use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The remaining bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into(), pos: 0 }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into(), pos: 0 }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read access to a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads the next `n` bytes.
    fn advance(&mut self, n: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Reads a little-endian u64.
    fn get_u64_le(&mut self) -> u64 {
        let c = self.chunk();
        assert!(c.len() >= 8, "buffer underflow");
        let v = u64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.pos += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A mutable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u64() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u64_le(7);
        m.put_u64_le(u64::MAX);
        let mut b = m.freeze();
        assert_eq!(b.len(), 16);
        assert_eq!(b.get_u64_le(), 7);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert!(b.is_empty());
    }
}
