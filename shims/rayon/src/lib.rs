//! Offline shim for `rayon`.
//!
//! Implements the subset of the parallel-iterator surface this workspace
//! uses (`par_iter_mut().map(..).collect()`, `into_par_iter()` on ranges with
//! `map`/`flat_map_iter`) with genuine parallelism over `std::thread::scope`,
//! one contiguous chunk per available core. Results are collected in input
//! order, so behaviour is deterministic and identical to sequential code.
//!
//! Like real rayon, the thread count honours the `RAYON_NUM_THREADS`
//! environment variable (read once, at first use) and otherwise falls back
//! to the host's available parallelism; [`current_num_threads`] exposes the
//! resolved value.

use std::ops::Range;
use std::sync::OnceLock;

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefMutIterator};
}

/// The resolved global thread count (rayon's `current_num_threads`):
/// `RAYON_NUM_THREADS` when set to a positive integer, otherwise the host's
/// available parallelism. Cached after the first call, as in real rayon's
/// global pool.
pub fn current_num_threads() -> usize {
    static RESOLVED: OnceLock<usize> = OnceLock::new();
    *RESOLVED.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

fn num_threads() -> usize {
    current_num_threads()
}

/// Runs `f` over each index block `[lo, hi)` of `0..n` on its own thread and
/// returns the per-block outputs in block order.
fn run_blocks<R: Send>(n: usize, f: impl Fn(usize, usize) -> R + Sync) -> Vec<R> {
    if n == 0 {
        return Vec::new();
    }
    let threads = num_threads().min(n);
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || f(lo, hi))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon-shim worker panicked")).collect()
    })
}

/// Conversion into a "parallel" iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The parallel iterator type.
    type Iter;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel iterator over an index range.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Maps each index through `f` in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParResults<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let base = self.range.start;
        let n = self.range.len();
        let blocks = run_blocks(n, |lo, hi| (lo..hi).map(|i| f(base + i)).collect::<Vec<R>>());
        ParResults { items: blocks.into_iter().flatten().collect() }
    }

    /// Maps each index to a sequential iterator and concatenates the results
    /// in index order (rayon's `flat_map_iter`).
    pub fn flat_map_iter<I, F>(self, f: F) -> ParResults<I::Item>
    where
        I: IntoIterator,
        I::Item: Send,
        F: Fn(usize) -> I + Sync,
    {
        let base = self.range.start;
        let n = self.range.len();
        let blocks = run_blocks(n, |lo, hi| {
            (lo..hi).flat_map(|i| f(base + i)).collect::<Vec<I::Item>>()
        });
        ParResults { items: blocks.into_iter().flatten().collect() }
    }
}

/// Parallel iterator over an owned `Vec`.
pub struct ParVec<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParVec<T> {
    /// Maps each item through `f` in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParResults<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let mut slots: Vec<Option<T>> = self.items.into_iter().map(Some).collect();
        let n = slots.len();
        let threads = num_threads().min(n.max(1));
        let chunk = n.div_ceil(threads.max(1)).max(1);
        let blocks = std::thread::scope(|s| {
            let handles: Vec<_> = slots
                .chunks_mut(chunk)
                .map(|block| {
                    let f = &f;
                    s.spawn(move || {
                        block
                            .iter_mut()
                            .map(|slot| f(slot.take().expect("item present")))
                            .collect::<Vec<R>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect::<Vec<_>>()
        });
        ParResults { items: blocks.into_iter().flatten().collect() }
    }
}

/// Mutable parallel iteration, mirroring
/// `rayon::iter::IntoParallelRefMutIterator` (`par_iter_mut`).
pub trait IntoParallelRefMutIterator<'a> {
    /// The parallel iterator type.
    type Iter;
    /// Creates a parallel iterator over mutable references.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { data: self.as_mut_slice() }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Iter = ParSliceMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParSliceMut<'a, T> {
        ParSliceMut { data: self }
    }
}

/// Parallel iterator over `&mut [T]`.
pub struct ParSliceMut<'a, T: Send> {
    data: &'a mut [T],
}

impl<'a, T: Send> ParSliceMut<'a, T> {
    /// Maps each element through `f` in parallel, preserving order.
    pub fn map<R, F>(self, f: F) -> ParResults<R>
    where
        R: Send,
        F: Fn(&mut T) -> R + Sync,
    {
        let n = self.data.len();
        if n == 0 {
            return ParResults { items: Vec::new() };
        }
        let threads = num_threads().min(n);
        let chunk = n.div_ceil(threads);
        let blocks = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .data
                .chunks_mut(chunk)
                .map(|block| {
                    let f = &f;
                    s.spawn(move || block.iter_mut().map(f).collect::<Vec<R>>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon-shim worker panicked"))
                .collect::<Vec<_>>()
        });
        ParResults { items: blocks.into_iter().flatten().collect() }
    }

    /// Runs `f` on each element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut T) + Sync,
    {
        self.map(f).items.into_iter().for_each(drop);
    }
}

/// Already-computed results of a parallel stage, exposing `collect`.
pub struct ParResults<R> {
    items: Vec<R>,
}

impl<R> ParResults<R> {
    /// Collects the results, in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        self.items.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_preserves_order() {
        let out: Vec<usize> = (0..100).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let out: Vec<usize> = (0..10).into_par_iter().flat_map_iter(|i| vec![i; i]).collect();
        assert_eq!(out, (0..10).flat_map(|i| vec![i; i]).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_mut_maps_and_mutates() {
        let mut v: Vec<u64> = (0..37).collect();
        let doubled: Vec<u64> = v.par_iter_mut().map(|x| {
            *x += 1;
            *x * 2
        }).collect();
        assert_eq!(v, (1..38).collect::<Vec<u64>>());
        assert_eq!(doubled, (1..38u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_resolves_to_a_positive_value() {
        // Whatever the environment says, the resolved pool size is usable.
        assert!(crate::current_num_threads() >= 1);
    }

    #[test]
    fn empty_inputs() {
        let out: Vec<usize> = (0..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        let mut v: Vec<u8> = vec![];
        let out: Vec<u8> = v.par_iter_mut().map(|x| *x).collect();
        assert!(out.is_empty());
    }
}
