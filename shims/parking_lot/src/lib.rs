//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync::Mutex`/`RwLock` behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). Poisoned locks are recovered by
//! taking the inner value — matching parking_lot's semantics of not
//! propagating panics through locks.

use std::sync::TryLockError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
