//! Offline shim for `memmap2`.
//!
//! Provides read-only [`Mmap`] — the only surface the `.ecsr` loader in
//! `euler-graph` uses. On Unix the file is mapped with the platform's
//! `mmap(2)` (declared directly against the C library, since the `libc`
//! crate is unavailable offline); elsewhere, or when the kernel refuses the
//! mapping, the whole file is read into an owned buffer instead.
//!
//! Two deliberate deviations from the real crate, both safe-side:
//!
//! * [`Mmap::map`] takes the file by reference and is *safe*: the mapping is
//!   always `PROT_READ` + `MAP_PRIVATE`, so a concurrent writer can at worst
//!   produce stale bytes, never UB-through-aliasing in this process.
//! * The read fallback stores `u64` words, so the buffer start is 8-byte
//!   aligned just like a page-aligned mapping — callers that reinterpret the
//!   bytes as little-endian word arrays get the same alignment guarantee on
//!   both paths.

use std::fs::File;
use std::io;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// A read-only view of a file's bytes.
///
/// Deref to `[u8]` like the real `memmap2::Mmap`. The view is either a
/// kernel memory mapping (unmapped on drop) or, on the fallback path, an
/// owned copy of the file contents.
#[derive(Debug)]
pub struct Mmap {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *mut core::ffi::c_void,
        len: usize,
    },
    /// Owned fallback; `u64` storage keeps the base 8-byte aligned.
    Owned { words: Vec<u64>, len: usize },
}

// SAFETY: the mapping is read-only and owned exclusively by this value; the
// raw pointer is only a region handle, never aliased mutably.
unsafe impl Send for Mmap {}
// SAFETY: all access is through `&self` returning `&[u8]` into a read-only
// mapping, so concurrent readers can never observe a write.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `file` read-only. Falls back to reading the file into memory on
    /// platforms without `mmap` or when the mapping call fails.
    ///
    /// # Errors
    /// Propagates metadata/read I/O errors.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "file too large to map into this address space",
            ));
        }
        let len = len as usize;
        if len == 0 {
            // A zero-length mmap is invalid (EINVAL); an empty owned buffer
            // is indistinguishable to callers.
            return Ok(Mmap { inner: Inner::Owned { words: Vec::new(), len: 0 } });
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: len > 0; the fd is valid for the duration of the call;
            // a PROT_READ/MAP_PRIVATE mapping of a regular file has no
            // aliasing requirements on our side.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != sys::MAP_FAILED {
                return Ok(Mmap { inner: Inner::Mapped { ptr, len } });
            }
            // Fall through to the owned-read path (e.g. fd on a pseudo-fs).
        }
        Self::read_owned(file, len)
    }

    /// The pread-style fallback: reads the whole file into an 8-byte-aligned
    /// owned buffer.
    fn read_owned(file: &File, len: usize) -> io::Result<Mmap> {
        use std::io::Read;
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the Vec's allocation covers len bytes (rounded up to a
        // whole number of words) and u64 -> u8 reinterpretation is valid.
        let bytes =
            unsafe { std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, len) };
        let mut reader = file;
        reader.read_exact(bytes)?;
        Ok(Mmap { inner: Inner::Owned { words, len } })
    }

    /// True when the view is a kernel mapping rather than an owned copy.
    pub fn is_kernel_mapping(&self) -> bool {
        match self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Owned { .. } => false,
        }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            // SAFETY: the mapping at ptr spans len readable bytes until drop.
            Inner::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Inner::Owned { words, len } => {
                // SAFETY: the allocation covers *len bytes (see read_owned).
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                sys::munmap(ptr, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::path::PathBuf;

    fn temp_file(name: &str, contents: &[u8]) -> PathBuf {
        let dir = std::env::temp_dir().join("memmap2_shim_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = temp_file("basic.bin", b"hello mapping");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&map[..], b"hello mapping");
        assert_eq!(map.as_ref().len(), 13);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unix_uses_a_kernel_mapping() {
        let path = temp_file("kernel.bin", &[1u8; 4096]);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.is_kernel_mapping(), cfg!(unix));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_file("empty.bin", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_kernel_mapping());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn owned_fallback_is_word_aligned() {
        let path = temp_file("aligned.bin", &[7u8; 33]);
        let map = Mmap::read_owned(&File::open(&path).unwrap(), 33).unwrap();
        assert_eq!(map.len(), 33);
        assert_eq!(map.as_ptr() as usize % 8, 0);
        assert_eq!(&map[..], &[7u8; 33]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_word_aligned_too() {
        let path = temp_file("aligned_map.bin", &[9u8; 64]);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(map.as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }
}
