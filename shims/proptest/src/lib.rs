//! Offline shim for `proptest`.
//!
//! Supports the surface this workspace's property tests use: the
//! [`proptest!`] macro, integer-range / tuple / `any::<bool>()` /
//! `prop::collection::vec` strategies, [`ProptestConfig::with_cases`] and the
//! `prop_assert*` macros. Cases are sampled from a deterministic per-test
//! RNG (seeded from the test name), so runs are reproducible; there is no
//! shrinking — a failing case panics with the sampled arguments left to the
//! assertion message.

use std::ops::Range;

/// Deterministic RNG used to sample strategy values (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for `case` of the test named `name`, deterministic across runs.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A value generator (proptest's `Strategy`, minus shrinking).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

/// Types with a canonical "anything" strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (proptest's `prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A collection-length specification: an exact size or a half-open range
    /// (proptest's `SizeRange`).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// `Vec` strategy with element strategy `element` and length in `len`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = (self.len.lo..self.len.hi).generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` sampled cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Everything the tests import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Mirror of `proptest::prelude::prop` (module-style access to the crate
    /// root, e.g. `prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..100 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::for_case("vec", 0);
        let s = collection::vec((0u64..10, 0u64..10), 2..5);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_expands_and_runs(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            let described = if flip { "heads" } else { "tails" };
            prop_assert_ne!(described, "");
        }
    }
}
