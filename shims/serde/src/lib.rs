//! Offline shim for `serde`.
//!
//! The container image has no crates.io access, so this workspace vendors a
//! minimal stand-in: `Serialize` / `Deserialize` are marker traits satisfied
//! by every type, and the derives (re-exported from the sibling
//! `serde_derive` shim) expand to nothing. Code that needs actual JSON
//! output (`euler-metrics`) hand-rolls it instead of going through serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Stand-in for `serde::de`.
pub mod de {
    /// Marker trait standing in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}
