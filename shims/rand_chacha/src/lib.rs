//! Offline shim for `rand_chacha`.
//!
//! Exposes a deterministic, seedable RNG under the [`ChaCha8Rng`] name. The
//! implementation is xoshiro256++ seeded via SplitMix64 — NOT the ChaCha
//! stream cipher — which is fine here because the workspace only relies on
//! seeded determinism and statistical quality, never on matching the
//! upstream byte stream.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable RNG (xoshiro256++ core).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but keep the guard explicit.
        if s == [0; 4] {
            s[0] = 1;
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
