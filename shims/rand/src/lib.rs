//! Offline shim for `rand` (0.8-style API subset).
//!
//! Deterministic given a seed, self-consistent, and sufficient for the
//! generators in `euler-gen`: `Rng::gen`, `gen_range`, `gen_bool`,
//! `SeedableRng::seed_from_u64`, and `SliceRandom::{shuffle,
//! choose_multiple}`. Streams do NOT match the real rand crate; all
//! randomness in this workspace is seeded and only structural properties of
//! the outputs are asserted.

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`next_u64`](Self::next_u64)).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait RangeSample: Copy {
    /// Samples uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_range_sample {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_sample!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: RangeSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds an RNG whose stream is a deterministic function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sequence-related sampling (stand-in for `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Samples `amount` distinct elements (fewer if the slice is
        /// shorter), returned in selection order.
        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: RngCore + ?Sized>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            // Partial Fisher–Yates over an index table.
            let n = self.len();
            let k = amount.min(n);
            let mut idx: Vec<usize> = (0..n).collect();
            let mut picked = Vec::with_capacity(k);
            for i in 0..k {
                let j = i + (rng.next_u64() % (n - i) as u64) as usize;
                idx.swap(i, j);
                picked.push(&self[idx[i]]);
            }
            picked.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut rng = Lcg(3);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        use seq::SliceRandom;
        let v: Vec<u32> = (0..30).collect();
        let mut rng = Lcg(9);
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "choose_multiple must not repeat");
    }
}
