//! Offline shim for `serde_derive`.
//!
//! The real derives generate (de)serialisation code; this workspace only uses
//! the traits as markers (the one JSON consumer, `euler-metrics`, hand-rolls
//! its JSON), so the derives expand to nothing. The blanket impls in the
//! `serde` shim make every type satisfy the trait bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
