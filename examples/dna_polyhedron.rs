//! DNA rendering of polyhedral meshes — the paper's biology motivation
//! (ref [7], Benson et al., Nature 2015): routing a single DNA scaffold
//! strand along every edge of a polyhedral wireframe requires an Euler
//! circuit of the mesh skeleton.
//!
//! The octahedron is already Eulerian (4-regular); the icosahedron is
//! 5-regular, so — exactly like the paper's input pipeline — it is first
//! Eulerized by pairing odd-degree vertices with extra helper edges, and the
//! scaffold route is then computed with one reusable `EulerPipeline` setup
//! per mesh.
//!
//! Run with: `cargo run --example dna_polyhedron`

use euler_circuit::prelude::*;

fn route_scaffold(name: &str, mesh: &Graph, parts: u32) {
    println!("== {name}: {} vertices, {} strut edges ==", mesh.num_vertices(), mesh.num_edges());
    // Eulerize if needed (adds helper struts between odd-degree vertices).
    let (eulerian, info) = eulerize(mesh);
    if info.parity_edges_added > 0 {
        println!(
            "  added {} helper edges to fix {} odd-degree vertices ({:.1}% extra, paper's tool reports ~5%)",
            info.parity_edges_added,
            info.odd_vertices,
            info.extra_edge_fraction() * 100.0
        );
    } else {
        println!("  mesh is already Eulerian");
    }

    let run = EulerPipeline::builder()
        .graph(&eulerian)
        .partitioner(LdgPartitioner::new(parts))
        .verify(true)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let route = run.circuit.result.circuit().expect("polyhedron skeletons are connected");
    println!(
        "  scaffold route: {} edges in one closed strand, computed in {} supersteps over {} partitions",
        route.len(),
        run.merge.supersteps,
        run.partition.num_partitions
    );
    let vertices = run.circuit.result.vertex_sequence().unwrap();
    let preview: Vec<String> = vertices.iter().take(10).map(|v| v.to_string()).collect();
    println!("  strand starts: {} ...", preview.join(" -> "));
    verify_circuit(&eulerian, route).unwrap();
    println!("  scaffold verified: every strut traversed exactly once. ✓\n");
}

fn main() {
    route_scaffold("Octahedron", &synthetic::octahedron(), 2);
    route_scaffold("Icosahedron", &synthetic::icosahedron(), 2);

    // A larger "wireframe": a subdivided sphere approximation built as a
    // torus-like quad mesh, routed across 4 partitions.
    let mesh = synthetic::torus_grid(16, 16);
    route_scaffold("Quad wireframe (16x16 torus mesh)", &mesh, 4);
}
