//! Route planning for a city-wide snow-plough / salt-spreading fleet — the
//! transportation motivation of the paper's introduction (refs [2, 3]).
//!
//! A regular street grid (modelled as a torus so every intersection has four
//! streets and the network is Eulerian) is split into districts, one per
//! depot, with the BFS region-growing partitioner — plugged straight into the
//! `EulerPipeline` builder. The pipeline computes a single closed route that
//! covers every street exactly once; the example then reports per-district
//! statistics and the plough's route length.
//!
//! Run with: `cargo run --release --example city_snow_plow`

use euler_circuit::prelude::*;

fn main() {
    // 40x40 intersections, 3200 street segments, 8 depots.
    let rows = 40;
    let cols = 40;
    let districts = 8;
    let city = synthetic::torus_grid(rows, cols);
    println!(
        "Street network: {} intersections, {} street segments",
        city.num_vertices(),
        city.num_edges()
    );
    is_eulerian(&city).expect("a 4-regular street grid is Eulerian");

    // Plan the plough route: BFS region growing gives compact, connected
    // districts; the §5 deferred strategy keeps depot memory low.
    let run = EulerPipeline::builder()
        .graph(&city)
        .partitioner(BfsPartitioner::new(districts))
        .config(EulerConfig::improved())
        .verify(true)
        .build()
        .unwrap()
        .run()
        .unwrap();

    let assignment = &run.partition.assignment;
    let quality = PartitionQuality::evaluate(&city, assignment);
    println!(
        "Districts: {} ({} partitioner) | streets crossing district borders: {} ({:.1}% of all) | imbalance {:.1}%",
        districts,
        run.partition.partitioner,
        quality.cut_edges,
        quality.cut_fraction * 100.0,
        quality.imbalance * 100.0
    );

    let route = run.circuit.result.circuit().expect("connected street network");
    println!(
        "Computed a closed route covering all {} segments in {} BSP supersteps",
        route.len(),
        run.merge.supersteps
    );

    // Distance: every street segment is one block; the route length equals the
    // number of segments (the optimum — no deadheading needed on an Eulerian
    // network, which is the point of the Chinese-postman connection).
    println!("Route length: {} blocks (optimal: {})", route.len(), city.num_edges());

    // Which district does the route spend its time in?
    let mut per_district = vec![0u64; districts as usize];
    for step in route {
        per_district[assignment.partition_of(step.from).index()] += 1;
    }
    for (d, blocks) in per_district.iter().enumerate() {
        println!("  district {d}: {blocks} blocks entered from its intersections");
    }

    // Show the first few turns of the route.
    let preview: Vec<String> = route
        .iter()
        .take(12)
        .map(|s| format!("({},{})", s.from.0 / cols, s.from.0 % cols))
        .collect();
    println!("Route preview (row,col): {} ...", preview.join(" -> "));

    verify_circuit(&city, route).unwrap();
    println!("Route verified: every street ploughed exactly once, ends at the start depot. ✓");
}
