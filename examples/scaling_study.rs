//! A miniature version of the paper's evaluation (§4): generate the scaled
//! G-family, run the full pipeline on the distributed BSP backend with the
//! Spark-like cost model, and print the weak/strong-scaling picture of
//! Fig. 5 together with the per-level memory behaviour of Fig. 8.
//!
//! Both tables come out of the same `EulerPipeline` — only the backend
//! differs (BSP for the scaling table, in-process for the memory trace).
//!
//! Run with: `cargo run --release --example scaling_study [scale_shift]`
//! (scale_shift defaults to -5; 0 reproduces the default single-host sizes).

use euler_circuit::algo::memory_model::{ideal_series, model_series};
use euler_circuit::bsp::{BspConfig, PlatformCostModel};
use euler_circuit::prelude::*;

fn main() {
    let scale_shift: i32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(-5);
    println!("G-family scaled by 2^{scale_shift} (vertex counts relative to the single-host default)\n");

    println!(
        "{:<8} {:>9} {:>10} {:>6} {:>11} {:>12} {:>13} {:>14}",
        "Graph", "|V|", "|E|", "parts", "supersteps", "compute (s)", "total (s)", "shuffle bytes"
    );
    for config in euler_circuit::gen::configs::PAPER_CONFIGS {
        let (g, _) = config.generate(scale_shift);
        let run = EulerPipeline::builder()
            .graph(&g)
            .partitioner(LdgPartitioner::new(config.partitions))
            .backend(BspBackend::with_engine(
                BspConfig::one_worker_per_partition().with_cost_model(PlatformCostModel::spark_like()),
            ))
            .build()
            .unwrap()
            .run()
            .unwrap();
        let stats = run.merge.engine.as_ref().expect("BSP backend reports engine stats");
        println!(
            "{:<8} {:>9} {:>10} {:>6} {:>11} {:>12.3} {:>13.3} {:>14}",
            config.name,
            g.num_vertices(),
            g.num_edges(),
            config.partitions,
            stats.num_supersteps(),
            stats.total_compute_time().as_secs_f64(),
            stats.modelled_total_time().as_secs_f64(),
            stats.total_remote_bytes()
        );
    }

    // Memory behaviour across merge levels for the largest configuration,
    // this time on the in-process backend — same pipeline, same report shape.
    let config = euler_circuit::gen::configs::GraphConfig::by_name("G50/P8").unwrap();
    let (g, _) = config.generate(scale_shift);
    let run = EulerPipeline::builder()
        .graph(&g)
        .partitioner(LdgPartitioner::new(8))
        .backend(InProcessBackend::new())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let trace = run.report().level_trace();
    let current = model_series(&trace, MergeStrategy::Duplicated);
    let proposed = model_series(&trace, MergeStrategy::Deferred);
    let ideal = ideal_series(&trace);

    println!("\nG50/P8 memory state per merge level (Longs), as in Fig. 8:");
    println!(
        "{:<6} {:>15} {:>15} {:>15} {:>15}",
        "level", "cumu. current", "cumu. proposed", "cumu. ideal", "avg. current"
    );
    for level in 0..trace.len() {
        println!(
            "{:<6} {:>15} {:>15} {:>15} {:>15.0}",
            level, current.cumulative[level], proposed.cumulative[level], ideal.cumulative[level],
            current.average[level]
        );
    }
    println!("\nThe proposed Sec.-5 heuristics cut the early-level memory state, matching the paper's analysis.");
}
