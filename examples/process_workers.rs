//! Process-per-worker BSP over a wire transport, with a SIGKILL mid-run.
//!
//! Two runs of the same pipeline on real `euler-worker` OS processes
//! connected over loopback TCP:
//!
//! 1. a clean run — coordinator spawns the workers, drives supersteps over
//!    length-prefixed checksummed frames, shuts the fleet down;
//! 2. a sabotaged run — the coordinator SIGKILLs one worker in the middle
//!    of a superstep; heartbeat/socket monitoring notices, the worker is
//!    respawned, the fleet rolls back to the superstep checkpoint and the
//!    run completes anyway.
//!
//! The final circuits must be bit-identical. This is the CI smoke for the
//! distributed path (the `euler-worker` binary must be built first, which
//! `cargo build` / `cargo test` do as a matter of course).
//!
//! Run with: `cargo run --release --example process_workers`

use std::process::ExitCode;
use std::sync::Arc;

use euler_circuit::prelude::*;

fn run(g: &Graph, a: &PartitionAssignment, backend: BspBackend) -> PipelineRun {
    EulerPipeline::builder()
        .graph(g)
        .assignment(a.clone())
        .backend(backend)
        .build()
        .expect("pipeline builds")
        .run()
        .expect("pipeline runs")
}

fn main() -> ExitCode {
    // A mid-sized connected Eulerian graph over 4 partitions, 2 worker
    // processes (2 partition slots each).
    let g = synthetic::random_eulerian_connected(400, 40, 6, 2019);
    let a = LdgPartitioner::new(4).partition(&g);
    println!(
        "graph: {} vertices, {} edges, 4 partitions, 2 worker processes over TCP",
        g.num_vertices(),
        g.num_edges()
    );

    println!("\n=== clean run ===");
    let clean = run(
        &g,
        &a,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(TcpTransport))
            .process_workers(true),
    );
    let engine = clean.merge.engine.as_ref().expect("BSP runs carry engine stats");
    for s in &engine.supersteps {
        println!(
            "  superstep {}: {} partitions, {} local + {} remote msgs, {} shuffle bytes",
            s.superstep, s.active_partitions, s.local_messages, s.remote_messages, s.remote_bytes
        );
    }
    println!("  circuit edges: {}", clean.circuit.result.total_edges());

    println!("\n=== SIGKILL worker 1 at superstep 1, checkpointed recovery ===");
    let ckpt = std::env::temp_dir().join(format!("euler-pw-ckpt-{}", std::process::id()));
    let killed = run(
        &g,
        &a,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(TcpTransport))
            .process_workers(true)
            .checkpoint_dir(&ckpt)
            .with_fault_plan(FaultPlan::kill_at(1, 1)),
    );
    let recovery = killed.merge.engine.as_ref().unwrap().recovery;
    println!(
        "  restarts: {}, full restarts: {}, heartbeat misses: {}",
        recovery.restarts, recovery.full_restarts, recovery.heartbeat_misses
    );
    println!(
        "  checkpoint Longs written: {}, restored: {}",
        recovery.checkpoint_longs_written, recovery.checkpoint_longs_restored
    );
    for w in &killed.merge.warnings {
        println!("  warning: {w}");
    }

    // The SIGKILL must have been seen — and absorbed without a trace in
    // the output.
    if recovery.restarts == 0 {
        eprintln!("FAIL: the kill was never observed");
        return ExitCode::FAILURE;
    }
    if clean.circuit.result.circuits != killed.circuit.result.circuits
        || clean.merge.total_transfer_longs != killed.merge.total_transfer_longs
    {
        eprintln!("FAIL: recovered run differs from the clean run");
        return ExitCode::FAILURE;
    }
    if ckpt.exists() {
        eprintln!("FAIL: checkpoint directory survived a completed run");
        return ExitCode::FAILURE;
    }
    println!("\nrecovered run is bit-identical to the clean run");
    ExitCode::SUCCESS
}
