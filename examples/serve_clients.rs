//! The Euler circuit service smoke: one server, many concurrent clients.
//!
//! Binds an in-process [`EulerService`] on loopback TCP and drives it the
//! way a deployment would:
//!
//! 1. three clients run the same registered graph concurrently, each with
//!    different options — every streamed circuit must be **bit-identical**
//!    to the library path (`EulerPipeline::run` with the same
//!    configuration);
//! 2. a fourth client starts a run on a much larger graph and cancels it
//!    mid-flight — the run must end with `Cancelled`, not a circuit;
//! 3. a repeat of a finished request must come from the circuit cache with
//!    no new pipeline run (the executed-run counter must not move);
//! 4. throughout, the admission controller's high-water mark must stay at
//!    or under the configured cap, and the admitted budget must drain back
//!    to zero once the streams end.
//!
//! This is the CI smoke for the service layer. Run with:
//! `cargo run --release --example serve_clients`

use std::process::ExitCode;
use std::thread;

use euler_circuit::prelude::*;

const CAP_LONGS: u64 = 1 << 22;
const FRAGMENT_BUDGET_LONGS: u64 = 1 << 16;

/// The library path the service must match bit for bit: same source file,
/// same partitioner, same merge strategy, same deterministic backend.
fn reference(path: &std::path::Path, opts: RunOptions) -> CircuitResult {
    let builder = EulerPipeline::builder()
        .source(MmapCsrSource::open(path).expect("reference source opens"))
        .config(EulerConfig {
            merge_strategy: opts.strategy,
            fragment_memory_budget: Some(FRAGMENT_BUDGET_LONGS),
            ..EulerConfig::default()
        })
        .backend(InProcessBackend::new().with_parallelism(Parallelism::IntraPartition));
    let builder = match opts.partitioner {
        PartitionerKind::Hash => builder.partitioner(HashPartitioner::new(opts.partitions)),
        PartitionerKind::Ldg => builder.partitioner(LdgPartitioner::new(opts.partitions)),
    };
    builder
        .build()
        .expect("reference pipeline builds")
        .run()
        .expect("reference pipeline runs")
        .circuit
        .result
}

fn main() -> ExitCode {
    let small = synthetic::random_eulerian_connected(300, 60, 6, 1907);
    let big = synthetic::random_eulerian_connected(30_000, 6_000, 8, 1908);
    let small_path =
        std::env::temp_dir().join(format!("euler-serve-small-{}.ecsr", std::process::id()));
    let big_path =
        std::env::temp_dir().join(format!("euler-serve-big-{}.ecsr", std::process::id()));
    write_csr_file(&small, &small_path).expect("small graph packs");
    write_csr_file(&big, &big_path).expect("big graph packs");

    let service = EulerService::bind(ServiceConfig {
        memory_cap_longs: CAP_LONGS,
        workers: 4,
        fragment_budget_longs: FRAGMENT_BUDGET_LONGS,
        ..ServiceConfig::default()
    })
    .expect("service binds");
    let endpoint = service.endpoint().to_string();
    println!("serving on {endpoint}");

    let admin = ServiceClient::connect(&endpoint).expect("admin client connects");
    let small_info = admin.register(small_path.to_str().unwrap()).expect("small registers");
    let big_info = admin.register(big_path.to_str().unwrap()).expect("big registers");
    println!(
        "registered {:#018x} ({} edges) and {:#018x} ({} edges)",
        small_info.checksum, small_info.num_edges, big_info.checksum, big_info.num_edges
    );

    // --- three concurrent clients, three configurations --------------------
    let variants = [
        RunOptions {
            partitions: 2,
            strategy: MergeStrategy::Duplicated,
            partitioner: PartitionerKind::Hash,
        },
        RunOptions {
            partitions: 4,
            strategy: MergeStrategy::Deduplicated,
            partitioner: PartitionerKind::Ldg,
        },
        RunOptions {
            partitions: 3,
            strategy: MergeStrategy::Deferred,
            partitioner: PartitionerKind::Hash,
        },
    ];
    let outcomes: Vec<RunOutcome> = thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|&opts| {
                let endpoint = endpoint.clone();
                s.spawn(move || {
                    let client = ServiceClient::connect(&endpoint).expect("client connects");
                    client.run(small_info.checksum, opts).expect("run streams")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread joins")).collect()
    });
    for (opts, outcome) in variants.iter().zip(&outcomes) {
        if outcome.cached || outcome.cancelled {
            eprintln!("FAIL: a fresh run reported cached={} cancelled={}", outcome.cached, outcome.cancelled);
            return ExitCode::FAILURE;
        }
        let expect = reference(&small_path, *opts);
        if outcome.circuits != expect.circuits {
            eprintln!("FAIL: streamed circuit differs from the library path for {opts:?}");
            return ExitCode::FAILURE;
        }
        let summary = outcome.summary.expect("fresh runs carry a summary");
        println!(
            "  {:?}/{:?} over {} partitions: {} circuit(s), {} admitted Longs, {} measured",
            opts.strategy,
            opts.partitioner,
            opts.partitions,
            outcome.circuits.len(),
            outcome.admitted_longs,
            summary.measured_longs
        );
    }
    println!("all three concurrent circuits are bit-identical to the library path");

    // --- cancellation ends the run and frees its budget ---------------------
    let canceller = ServiceClient::connect(&endpoint).expect("canceller connects");
    canceller
        .start_run(big_info.checksum, RunOptions { partitions: 8, ..RunOptions::default() })
        .expect("big run submits");
    // Wait until the run holds real budget, then ask for its cancellation.
    let admitted = loop {
        match canceller.next_event().expect("run event") {
            RunEvent::Accepted { admitted_longs, cached } => {
                if cached {
                    eprintln!("FAIL: the big run cannot be a cache hit");
                    return ExitCode::FAILURE;
                }
                break admitted_longs;
            }
            RunEvent::Cancelled => {
                eprintln!("FAIL: cancelled before anything was admitted");
                return ExitCode::FAILURE;
            }
            _ => {}
        }
    };
    canceller.cancel().expect("cancel frame sends");
    let cancelled = loop {
        match canceller.next_event().expect("run event") {
            RunEvent::Cancelled => break true,
            RunEvent::Done { .. } => break false,
            _ => {}
        }
    };
    if !cancelled {
        eprintln!("FAIL: the big run finished before the cancel landed");
        return ExitCode::FAILURE;
    }
    println!("cancelled the big run; its {admitted} admitted Longs came back");

    // --- cache hit: same request again, zero new pipeline runs --------------
    let before = admin.stats().expect("stats before the repeat");
    let repeat = admin.run(small_info.checksum, variants[0]).expect("repeat run streams");
    let after = admin.stats().expect("stats after the repeat");
    if !repeat.cached || repeat.circuits != outcomes[0].circuits {
        eprintln!("FAIL: the repeat request was not served verbatim from the cache");
        return ExitCode::FAILURE;
    }
    if after.runs_executed != before.runs_executed {
        eprintln!("FAIL: the cache hit re-ran the pipeline");
        return ExitCode::FAILURE;
    }
    println!("repeat request served from the circuit cache without a pipeline run");

    // --- final accounting ----------------------------------------------------
    let stats = service.stats();
    println!(
        "stats: {} executed, {} cached, {} cancelled, {} graphs, peak {} of cap {} Longs",
        stats.runs_executed,
        stats.runs_cached,
        stats.runs_cancelled,
        stats.graphs_registered,
        stats.peak_admitted_longs,
        stats.memory_cap_longs
    );
    let accounting_ok = stats.peak_admitted_longs > 0
        && stats.peak_admitted_longs <= stats.memory_cap_longs
        && stats.admitted_longs == 0
        && stats.runs_executed == 3
        && stats.runs_cached == 1
        && stats.runs_cancelled == 1
        && stats.graphs_registered == 2;
    service.shutdown();
    std::fs::remove_file(&small_path).ok();
    std::fs::remove_file(&big_path).ok();
    if !accounting_ok {
        eprintln!("FAIL: service accounting is off");
        return ExitCode::FAILURE;
    }
    println!("admitted budget drained to zero; the peak stayed under the cap");
    ExitCode::SUCCESS
}
