//! The out-of-core load path: pack a graph into the binary `.ecsr` format
//! (docs/FORMAT.md), memory-map it back, and run the pipeline through the
//! direct CSR slicing path — partitions cut straight from the mapped
//! sections, no in-memory `Graph` ever materialised.
//!
//! This is the loading mode the paper's "larger than one machine's memory"
//! scenario needs: the text parse + builder pass happens once, offline (the
//! `csr_pack` tool does the same for existing edge-list files); every later
//! run pays only a checksummed `mmap` open.
//!
//! Run with: `cargo run --example mmap_pipeline`

use euler_circuit::prelude::*;

fn main() {
    // A mid-sized Eulerian workload: a 100x100 torus grid (20k edges).
    let g = synthetic::torus_grid(100, 100);
    let assignment = LdgPartitioner::new(4).partition(&g);
    println!("workload: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // Pack once. `csr_pack <input.el> <output.ecsr>` does this for files.
    let dir = std::env::temp_dir().join("euler_example_mmap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("torus.ecsr");
    write_csr_file(&g, &path).expect("write .ecsr");
    println!("packed to {} ({} bytes)", path.display(), std::fs::metadata(&path).unwrap().len());

    // Map it back. `open` validates magic, version, endianness, checksum and
    // the CSR invariants; corrupt files fail here with a typed error.
    let source = MmapCsrSource::open(&path).expect("open .ecsr");
    println!("mapped: {}", source.name());

    // A CSR-backed source plus a precomputed assignment takes the direct
    // slicing path (observable in the stage report below); the Eulerian
    // degree pre-check runs off the mapped offsets section alone.
    let run = EulerPipeline::builder()
        .source(source)
        .assignment(assignment)
        .strategy(MergeStrategy::Deferred)
        .build()
        .expect("pipeline config")
        .run()
        .expect("pipeline run");

    println!(
        "partition stage: source loaded via '{}' in {:?}, partitioned in {:?}",
        run.partition.partitioner, run.partition.load_time, run.partition.partition_time,
    );
    println!(
        "merge stage: {} supersteps on '{}' backend, {} Longs shipped",
        run.merge.supersteps, run.merge.backend, run.merge.total_transfer_longs,
    );
    let result = &run.circuit.result;
    println!(
        "circuit stage: {} circuit(s) covering {} edges (graph has {})",
        result.num_circuits(),
        result.total_edges(),
        g.num_edges(),
    );
    assert_eq!(result.total_edges(), g.num_edges());

    // The mapped load reproduces the original graph exactly, so verifying
    // against the in-memory graph still succeeds.
    verify_circuit(&g, result.circuit().expect("single circuit")).expect("valid Euler circuit");
    println!("verified: every edge exactly once, chained, closed");
    std::fs::remove_file(&path).ok();
}
