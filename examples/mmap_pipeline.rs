//! The out-of-core spine: pack a graph into the binary `.ecsr` format
//! (docs/FORMAT.md), memory-map it back, partition it with *streaming* LDG
//! (chunked edge batches off the mapped sections — no in-memory `Graph` is
//! ever materialised), and run the pipeline under a fragment memory budget
//! that pages cold circuit fragments to a temp file.
//!
//! This is the full "graphs larger than memory" mode the paper's §5 scale
//! claim needs: the text parse + builder pass happens once, offline (the
//! `csr_pack` tool does the same for existing edge-list files); every later
//! run pays a checksummed `mmap` open, one streaming partition pass, and a
//! bounded resident fragment set.
//!
//! Run with: `cargo run --example mmap_pipeline`

use euler_circuit::prelude::*;

fn main() {
    // A mid-sized Eulerian workload: a 100x100 torus grid (20k edges).
    let g = synthetic::torus_grid(100, 100);
    println!("workload: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // Pack once. `csr_pack <input.el> <output.ecsr>` does this for files.
    let dir = std::env::temp_dir().join("euler_example_mmap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("torus.ecsr");
    write_csr_file(&g, &path).expect("write .ecsr");
    println!("packed to {} ({} bytes)", path.display(), std::fs::metadata(&path).unwrap().len());

    // Map it back. `open` validates magic, version, endianness, checksum and
    // the CSR invariants; corrupt files fail here with a typed error.
    let source = MmapCsrSource::open(&path).expect("open .ecsr");
    println!("mapped: {}", source.name());

    // A CSR-backed source plus a streaming-capable partitioner takes the
    // zero-Graph path: LDG consumes vertex-grouped edge batches straight off
    // the mapped sections (identical assignment to the in-memory path), the
    // Eulerian degree pre-check runs off the offsets section alone, and the
    // partition view is sliced from the mapped arrays. `.memory_budget(..)`
    // additionally bounds resident circuit-fragment memory: overflow pages
    // to a temp file and is reloaded on demand in Phase 3 — bit-identical
    // circuits, observable spill accounting.
    let run = EulerPipeline::builder()
        .source(source)
        .partitioner(LdgPartitioner::new(4))
        .strategy(MergeStrategy::Deferred)
        .memory_budget(8_192) // Longs; far below this workload's fragments
        .build()
        .expect("pipeline config")
        .run()
        .expect("pipeline run");

    println!(
        "partition stage: '{}' in {:?} (load time {:?} — nothing is loaded up front)",
        run.partition.partitioner, run.partition.partition_time, run.partition.load_time,
    );
    println!(
        "merge stage: {} supersteps on '{}' backend, {} Longs shipped",
        run.merge.supersteps, run.merge.backend, run.merge.total_transfer_longs,
    );
    let stats = run.circuit.fragment_stats;
    println!(
        "fragment store: {} of {} Longs peak resident | {} fragments spilled \
         ({} Longs written, {} reloaded in Phase 3)",
        stats.peak_resident_longs,
        run.circuit.fragment_disk_longs,
        stats.spilled_fragments,
        stats.spill_write_longs,
        stats.spill_read_longs,
    );
    assert!(run.partition.partitioner.contains("streamed"), "zero-Graph path expected");
    assert!(stats.spilled_fragments > 0, "the tiny budget must spill");
    let result = &run.circuit.result;
    println!(
        "circuit stage: {} circuit(s) covering {} edges (graph has {})",
        result.num_circuits(),
        result.total_edges(),
        g.num_edges(),
    );
    assert_eq!(result.total_edges(), g.num_edges());

    // The mapped load reproduces the original graph exactly, so verifying
    // against the in-memory graph still succeeds.
    verify_circuit(&g, result.circuit().expect("single circuit")).expect("valid Euler circuit");
    println!("verified: every edge exactly once, chained, closed");
    std::fs::remove_file(&path).ok();
}
