//! Quickstart: run the full partition-centric pipeline on the paper's Fig.-1
//! worked example and print every intermediate artefact — the partitions, the
//! meta-graph, the merge tree (Fig. 2), and the final Euler circuit.
//!
//! The run goes through the `EulerPipeline` builder: a graph source, a
//! partition assignment, a backend — then staged outputs
//! (partition → merge → circuit), each carrying its slice of the report.
//!
//! Run with: `cargo run --example quickstart`

use euler_circuit::algo;
use euler_circuit::prelude::*;

fn main() {
    // The 14-vertex, 16-edge, 4-partition graph of Fig. 1a.
    let (g, assignment) = synthetic::paper_fig1();
    println!("Input graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());
    is_eulerian(&g).expect("the Fig.-1 graph is Eulerian");

    // Partition-centric view: internal/boundary vertices, local/remote edges.
    let pg = PartitionedGraph::from_assignment(&g, &assignment).unwrap();
    for p in pg.partitions() {
        let (odd, even) = p.classify_boundary();
        println!(
            "  {}: {} internal, {} boundary (odd {:?}, even {:?}), {} local edges, {} remote edges",
            p.id,
            p.internal.len(),
            p.boundary.len(),
            odd,
            even,
            p.num_local_edges(),
            p.num_remote_edges()
        );
    }

    // The meta-graph and the Phase-2 merge tree (Fig. 2).
    let meta = MetaGraph::from_partitioned(&pg);
    println!("\nMeta-graph edges (partition pairs with cut-edge weights):");
    for e in &meta.edges {
        println!("  {} -- {}  weight {}", e.a, e.b, e.weight);
    }
    let tree = algo::MergeTree::build(&meta);
    println!("\nMerge tree (Fig. 2):\n{}", tree.render());

    // Build and run the full pipeline, then print the circuit.
    let run = EulerPipeline::builder()
        .graph(&g)
        .assignment(assignment)
        .backend(InProcessBackend::new())
        .verify(true)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let circuit = run.circuit.result.circuit().expect("connected Eulerian graph yields one circuit");
    println!("Backend: {} | source: {}", run.merge.backend, run.partition.source);
    println!("Supersteps (Phase-1 rounds): {}", run.merge.supersteps);
    println!("Circuit ({} edges):", circuit.len());
    let vertices: Vec<String> = run
        .circuit
        .result
        .vertex_sequence()
        .unwrap()
        .iter()
        .map(|v| format!("v{}", v.0 + 1)) // paper numbering is 1-based
        .collect();
    println!("  {}", vertices.join(" -> "));

    // Cross-check against the sequential Hierholzer oracle.
    let oracle = hierholzer_circuit(&g).unwrap();
    assert_eq!(oracle.total_edges(), run.circuit.result.total_edges());
    verify_circuit(&g, circuit).unwrap();
    println!("\nVerified: every edge traversed exactly once, walk closed. ✓");
}
