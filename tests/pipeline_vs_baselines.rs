//! Cross-crate integration tests: the distributed partition-centric pipeline
//! against the sequential baselines, over every generator family and
//! partitioner in the workspace — all through the `EulerPipeline` builder.

use euler_circuit::algo::verify::verify_result;
use euler_circuit::prelude::*;

/// Runs the partition-centric pipeline and checks it covers exactly the same
/// edge set as the Hierholzer oracle, with valid closed circuits.
fn check_against_oracle(g: &Graph, parts: u32) {
    let run = EulerPipeline::builder()
        .graph(g)
        .partitioner(LdgPartitioner::new(parts))
        .build()
        .unwrap()
        .run()
        .unwrap();
    verify_result(g, &run.circuit.result).unwrap();

    let oracle = hierholzer_circuit(g).unwrap();
    assert_eq!(run.circuit.result.total_edges(), oracle.total_edges());
    assert_eq!(run.circuit.result.num_circuits(), oracle.num_circuits());
    assert_eq!(run.circuit.result.total_edges(), g.num_edges());
    assert!(run.merge.supersteps >= 1);
}

#[test]
fn torus_grids_across_partition_counts() {
    for (rows, cols, parts) in [(6, 6, 1u32), (8, 10, 2), (10, 10, 4), (12, 12, 8)] {
        let g = synthetic::torus_grid(rows, cols);
        check_against_oracle(&g, parts);
    }
}

#[test]
fn circulant_graphs() {
    for (n, offsets) in [(31u64, vec![1u64, 2]), (60, vec![1, 3, 7]), (101, vec![2, 5])] {
        let g = synthetic::circulant(n, &offsets);
        check_against_oracle(&g, 4);
    }
}

#[test]
fn random_eulerian_graphs_many_seeds() {
    for seed in 0..8u64 {
        let g = synthetic::random_eulerian_connected(150, 20, 6, seed);
        check_against_oracle(&g, 5);
    }
}

#[test]
fn eulerized_rmat_graphs() {
    for name in ["G20/P2", "G40/P8"] {
        let config = GraphConfig::by_name(name).unwrap();
        let (g, info) = config.generate(-7);
        assert!(info.final_edges >= info.original_edges);
        check_against_oracle(&g, config.partitions);
    }
}

#[test]
fn polyhedra_after_eulerization() {
    for mesh in [synthetic::octahedron(), synthetic::icosahedron()] {
        let (g, _) = eulerize(&mesh);
        check_against_oracle(&g, 2);
    }
}

#[test]
fn fleury_and_makki_agree_with_partition_centric() {
    let g = synthetic::random_eulerian_connected(40, 6, 5, 3);
    let run = EulerPipeline::builder()
        .graph(&g)
        .partitioner(HashPartitioner::new(3))
        .build()
        .unwrap()
        .run()
        .unwrap();
    let pc = &run.circuit.result;
    let fleury = fleury_circuit(&g).unwrap();
    let makki = MakkiRunner::new().run(&g).unwrap();
    assert_eq!(pc.total_edges(), fleury.total_edges());
    assert_eq!(pc.total_edges(), makki.result.total_edges());
    assert_eq!(pc.num_circuits(), 1);
    assert_eq!(makki.result.num_circuits(), 1);
}

#[test]
fn all_partitioners_produce_valid_inputs_for_the_pipeline() {
    let g = synthetic::torus_grid(12, 12);
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(HashPartitioner::new(4)),
        Box::new(LdgPartitioner::new(4)),
        Box::new(BfsPartitioner::new(4)),
    ];
    for p in partitioners {
        let name = p.name();
        let assignment = p.partition(&g);
        let run = EulerPipeline::builder()
            .graph(&g)
            .assignment(assignment)
            .build()
            .unwrap()
            .run()
            .unwrap();
        verify_result(&g, &run.circuit.result).unwrap();
        assert_eq!(run.circuit.result.total_edges(), g.num_edges(), "partitioner {name}");
    }
}

#[test]
fn refined_partition_reduces_cut_and_still_works() {
    let g = synthetic::torus_grid(16, 16);
    let rough = HashPartitioner::new(4).partition(&g);
    let (refined, _) = euler_circuit::partition::fm_refine(&g, &rough, Default::default());
    let before = PartitionQuality::evaluate(&g, &rough);
    let after = PartitionQuality::evaluate(&g, &refined);
    assert!(after.cut_edges <= before.cut_edges);
    let run = EulerPipeline::builder().graph(&g).assignment(refined).build().unwrap().run().unwrap();
    verify_result(&g, &run.circuit.result).unwrap();
}

#[test]
fn bsp_backend_agrees_with_in_process_backend() {
    let g = synthetic::random_eulerian_connected(100, 12, 5, 7);
    let assignment = LdgPartitioner::new(4).partition(&g);
    let in_process = EulerPipeline::builder()
        .graph(&g)
        .assignment(assignment.clone())
        .backend(InProcessBackend::new())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let bsp = EulerPipeline::builder()
        .graph(&g)
        .assignment(assignment)
        .backend(BspBackend::new())
        .build()
        .unwrap()
        .run()
        .unwrap();
    verify_result(&g, &bsp.circuit.result).unwrap();
    assert_eq!(in_process.circuit.result.total_edges(), bsp.circuit.result.total_edges());
    // The unified report has the same shape on both backends; the BSP engine
    // executed exactly one superstep per merge level.
    assert_eq!(in_process.merge.supersteps, bsp.merge.supersteps);
    let engine = bsp.merge.engine.as_ref().expect("engine stats present");
    assert_eq!(engine.num_supersteps(), bsp.merge.supersteps);
}

/// The mid-level entry points agree with the builder API — `run_with_backend`
/// and its `Graph`-free core `run_on_partitioned` drive the same walk.
#[test]
fn mid_level_entry_points_match_the_builder() {
    let g = synthetic::random_eulerian_connected(90, 10, 5, 13);
    let assignment = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default().sequential();

    let run = EulerPipeline::builder()
        .graph(&g)
        .assignment(assignment.clone())
        .config(config.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let (mid_result, mid_report) =
        run_with_backend(&g, &assignment, &config, &InProcessBackend::new()).unwrap();
    // Sequential runs are fully deterministic: every path produces identical
    // circuits and identical transfer accounting.
    assert_eq!(mid_result.circuits, run.circuit.result.circuits);
    assert_eq!(mid_report.total_transfer_longs, run.merge.total_transfer_longs);
    assert_eq!(mid_report.supersteps, run.merge.supersteps);
    assert_eq!(mid_report.backend, "in-process");

    let pg = PartitionedGraph::from_assignment(&g, &assignment).unwrap();
    let (core_result, core_report) =
        run_on_partitioned(&pg, &config, &InProcessBackend::new()).unwrap();
    verify_result(&g, &core_result).unwrap();
    assert_eq!(core_result.circuits, mid_result.circuits);
    assert_eq!(core_report.total_transfer_longs, mid_report.total_transfer_longs);
}

/// The mmap CSR source feeds the whole pipeline: packed from the same graph,
/// the direct slicing path must reproduce the in-memory run bit for bit.
#[test]
fn mmap_csr_source_matches_in_memory_source() {
    let g = synthetic::random_eulerian_connected(130, 18, 6, 29);
    let assignment = LdgPartitioner::new(5).partition(&g);
    let config = EulerConfig::default().sequential();
    let dir = std::env::temp_dir().join("euler_integration_csr");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.ecsr");
    write_csr_file(&g, &path).unwrap();

    let from_csr = EulerPipeline::builder()
        .source(MmapCsrSource::open(&path).unwrap())
        .assignment(assignment.clone())
        .config(config.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let from_mem = EulerPipeline::builder()
        .source(InMemorySource::new(g.clone()))
        .assignment(assignment)
        .config(config)
        .build()
        .unwrap()
        .run()
        .unwrap();
    verify_result(&g, &from_csr.circuit.result).unwrap();
    assert_eq!(from_csr.circuit.result.circuits, from_mem.circuit.result.circuits);
    assert_eq!(from_csr.merge.total_transfer_longs, from_mem.merge.total_transfer_longs);
    assert_eq!(from_csr.partition.partitioner, "pre-assigned (direct csr slice)");
    std::fs::remove_file(&path).ok();
}
