//! Property-based tests over the end-to-end pipeline: for randomly generated
//! Eulerian graphs, random partition counts and every merge strategy, the
//! reconstructed circuit must cover every edge exactly once, chain, and close.

use euler_circuit::algo::{run_partitioned, verify::verify_result};
use euler_circuit::prelude::*;
use proptest::prelude::*;

/// Builds a connected Eulerian graph from a seed: a shuffled Hamiltonian
/// backbone plus extra random cycles.
fn graph_from(seed: u64, n: u64, extra: usize) -> Graph {
    synthetic::random_eulerian_connected(n.max(4), extra, 5, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The circuit covers every edge exactly once and closes, for any seed,
    /// size, partition count and partitioner.
    #[test]
    fn circuit_covers_every_edge_exactly_once(
        seed in 0u64..1000,
        n in 8u64..120,
        extra in 0usize..12,
        parts in 1u32..9,
        use_hash in any::<bool>(),
    ) {
        let g = graph_from(seed, n, extra);
        let assignment = if use_hash {
            HashPartitioner::new(parts).partition(&g)
        } else {
            LdgPartitioner::new(parts).partition(&g)
        };
        let (result, report) = run_partitioned(&g, &assignment, &EulerConfig::default()).unwrap();
        prop_assert!(verify_result(&g, &result).is_ok());
        prop_assert_eq!(result.total_edges(), g.num_edges());
        prop_assert_eq!(result.num_circuits(), 1);
        // Coordination cost is logarithmic in the partition count.
        prop_assert!(report.supersteps <= (parts as f64).log2().ceil() as u32 + 1);
    }

    /// All three merge strategies produce valid circuits over the same input,
    /// and the deferred strategy never uses more active memory than the
    /// baseline.
    #[test]
    fn merge_strategies_are_equivalent_in_coverage(
        seed in 0u64..500,
        n in 12u64..80,
        parts in 2u32..7,
    ) {
        let g = graph_from(seed, n, 6);
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let mut totals = Vec::new();
        let mut baseline_memory = None;
        for strategy in MergeStrategy::all() {
            let config = EulerConfig::default().with_merge_strategy(strategy);
            let (result, report) = run_partitioned(&g, &assignment, &config).unwrap();
            prop_assert!(verify_result(&g, &result).is_ok());
            totals.push(result.total_edges());
            let cumulative: u64 = report.cumulative_memory_by_level().iter().sum();
            match strategy {
                MergeStrategy::Duplicated => baseline_memory = Some(cumulative),
                _ => prop_assert!(cumulative <= baseline_memory.unwrap()),
            }
        }
        prop_assert!(totals.iter().all(|&t| t == g.num_edges()));
    }

    /// The partition-centric result always matches the sequential Hierholzer
    /// oracle in edge coverage and circuit count.
    #[test]
    fn matches_hierholzer_oracle(seed in 0u64..500, n in 8u64..100, parts in 1u32..6) {
        let g = graph_from(seed, n, 4);
        let assignment = HashPartitioner::new(parts).partition(&g);
        let (result, _) = run_partitioned(&g, &assignment, &EulerConfig::default()).unwrap();
        let oracle = hierholzer_circuit(&g).unwrap();
        prop_assert_eq!(result.total_edges(), oracle.total_edges());
        prop_assert_eq!(result.num_circuits(), oracle.num_circuits());
    }

    /// Determinism regression for the dense Phase-1 rewrite: on every
    /// partition of every generated Eulerian graph, the flat-array kernel
    /// (`run_phase1`) and the retained hash-map reference
    /// (`run_phase1_reference`) must produce bit-identical fragments, path
    /// maps and residual partition state.
    #[test]
    fn phase1_dense_matches_reference_semantics(
        seed in 0u64..500,
        n in 8u64..100,
        extra in 0usize..10,
        parts in 1u32..7,
        use_hash in any::<bool>(),
    ) {
        use euler_circuit::algo::phase1::{reference::run_phase1_reference, run_phase1};
        use euler_circuit::algo::{FragmentStore, WorkingPartition};
        let g = graph_from(seed, n, extra);
        let assignment = if use_hash {
            HashPartitioner::new(parts).partition(&g)
        } else {
            LdgPartitioner::new(parts).partition(&g)
        };
        let pg = PartitionedGraph::from_assignment(&g, &assignment).unwrap();
        for p in pg.partitions() {
            let mut wp_dense = WorkingPartition::from_partition(p);
            let mut wp_ref = wp_dense.clone();
            let store_dense = FragmentStore::new();
            let store_ref = FragmentStore::new();
            let out_dense = run_phase1(&mut wp_dense, &store_dense);
            let out_ref = run_phase1_reference(&mut wp_ref, &store_ref);
            prop_assert_eq!(out_dense.path_map, out_ref.path_map);
            prop_assert_eq!(out_dense.complexity, out_ref.complexity);
            prop_assert_eq!(wp_dense.local_edges, wp_ref.local_edges);
            prop_assert_eq!(wp_dense.remote_edges, wp_ref.remote_edges);
            let frags_dense = store_dense.snapshot();
            let frags_ref = store_ref.snapshot();
            prop_assert_eq!(frags_dense.len(), frags_ref.len());
            for (d, r) in frags_dense.iter().zip(&frags_ref) {
                prop_assert_eq!(d.id, r.id);
                prop_assert_eq!(d.kind, r.kind);
                prop_assert_eq!(&d.edges, &r.edges);
            }
        }
    }

    /// Eulerization always produces a graph the pipeline can solve, whatever
    /// the input (including disconnected and odd-degree-heavy graphs).
    #[test]
    fn eulerized_arbitrary_graphs_are_solved(
        edges in prop::collection::vec((0u64..40, 0u64..40), 1..150),
        parts in 1u32..5,
    ) {
        let mut b = GraphBuilder::with_vertices(40);
        b.extend_edges(edges.iter().copied());
        let raw = b.build().unwrap();
        let (g, _) = eulerize(&raw);
        prop_assert!(is_eulerian(&g).is_ok());
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let (result, _) = run_partitioned(&g, &assignment, &EulerConfig::default()).unwrap();
        prop_assert!(verify_result(&g, &result).is_ok());
        prop_assert_eq!(result.total_edges(), g.num_edges());
    }
}
