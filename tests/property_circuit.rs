//! Property-based tests over the end-to-end pipeline: for randomly generated
//! Eulerian graphs, random partition counts and every merge strategy, the
//! reconstructed circuit must cover every edge exactly once, chain, and
//! close — and the two execution backends must agree.

use euler_circuit::algo::verify::verify_result;
use euler_circuit::bsp::BspConfig;
use euler_circuit::prelude::*;
use proptest::prelude::*;

/// Builds a connected Eulerian graph from a seed: a shuffled Hamiltonian
/// backbone plus extra random cycles.
fn graph_from(seed: u64, n: u64, extra: usize) -> Graph {
    synthetic::random_eulerian_connected(n.max(4), extra, 5, seed)
}

/// A hub-heavy Eulerian multigraph: a `k`-cycle of hubs where hub `i % k`
/// carries `petals[i]` triangle petals, plus `digons[i]` doubled parallel
/// edges between consecutive hubs. Every petal and digon is an internal
/// cycle that `mergeInto` must splice into an earlier fragment, and the
/// parallel edges make the pivot vertex visible many times over — the
/// deep-splice-chain stress for the first-occurrence rotation semantics.
/// All degrees stay even by construction (triangles add 2 everywhere they
/// touch, digons add 2 to both endpoints), and the core keeps it connected.
fn hub_multigraph(k: u64, petals: &[u8], digons: &[u8]) -> Graph {
    let total: u64 = petals.iter().map(|&p| p as u64).sum();
    let mut b = GraphBuilder::with_vertices(k + 2 * total);
    for i in 0..k {
        b.add_edge(i, (i + 1) % k);
    }
    let mut next = k;
    for (i, &p) in petals.iter().enumerate() {
        let hub = i as u64 % k;
        for _ in 0..p {
            let (x, y) = (next, next + 1);
            next += 2;
            b.add_edge(hub, x);
            b.add_edge(x, y);
            b.add_edge(y, hub);
        }
    }
    for (i, &d) in digons.iter().enumerate() {
        let (u, v) = (i as u64 % k, (i as u64 + 1) % k);
        for _ in 0..d {
            b.add_edge(u, v);
            b.add_edge(u, v);
        }
    }
    b.build().expect("hub multigraph edges always valid")
}

/// Runs the pipeline on the in-process backend, returning circuit + report.
fn run_pipeline(
    g: &Graph,
    assignment: &PartitionAssignment,
    config: &EulerConfig,
) -> (CircuitResult, RunReport) {
    run_with_backend(g, assignment, config, &InProcessBackend::new()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The circuit covers every edge exactly once and closes, for any seed,
    /// size, partition count and partitioner.
    #[test]
    fn circuit_covers_every_edge_exactly_once(
        seed in 0u64..1000,
        n in 8u64..120,
        extra in 0usize..12,
        parts in 1u32..9,
        use_hash in any::<bool>(),
    ) {
        let g = graph_from(seed, n, extra);
        let assignment = if use_hash {
            HashPartitioner::new(parts).partition(&g)
        } else {
            LdgPartitioner::new(parts).partition(&g)
        };
        let (result, report) = run_pipeline(&g, &assignment, &EulerConfig::default());
        prop_assert!(verify_result(&g, &result).is_ok());
        prop_assert_eq!(result.total_edges(), g.num_edges());
        prop_assert_eq!(result.num_circuits(), 1);
        // Coordination cost is logarithmic in the partition count.
        prop_assert!(report.supersteps <= (parts as f64).log2().ceil() as u32 + 1);
    }

    /// All three merge strategies produce valid circuits over the same input,
    /// and the deferred strategy never uses more active memory than the
    /// baseline.
    #[test]
    fn merge_strategies_are_equivalent_in_coverage(
        seed in 0u64..500,
        n in 12u64..80,
        parts in 2u32..7,
    ) {
        let g = graph_from(seed, n, 6);
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let mut totals = Vec::new();
        let mut baseline_memory = None;
        for strategy in MergeStrategy::all() {
            let config = EulerConfig::default().with_merge_strategy(strategy);
            let (result, report) = run_pipeline(&g, &assignment, &config);
            prop_assert!(verify_result(&g, &result).is_ok());
            totals.push(result.total_edges());
            let cumulative: u64 = report.cumulative_memory_by_level().iter().sum();
            match strategy {
                MergeStrategy::Duplicated => baseline_memory = Some(cumulative),
                _ => prop_assert!(cumulative <= baseline_memory.unwrap()),
            }
        }
        prop_assert!(totals.iter().all(|&t| t == g.num_edges()));
    }

    /// The partition-centric result always matches the sequential Hierholzer
    /// oracle in edge coverage and circuit count.
    #[test]
    fn matches_hierholzer_oracle(seed in 0u64..500, n in 8u64..100, parts in 1u32..6) {
        let g = graph_from(seed, n, 4);
        let assignment = HashPartitioner::new(parts).partition(&g);
        let (result, _) = run_pipeline(&g, &assignment, &EulerConfig::default());
        let oracle = hierholzer_circuit(&g).unwrap();
        prop_assert_eq!(result.total_edges(), oracle.total_edges());
        prop_assert_eq!(result.num_circuits(), oracle.num_circuits());
    }

    /// Backend equivalence for the API redesign: `EulerPipeline` over
    /// `InProcessBackend` and over `BspBackend` must produce *identical*
    /// circuits and identical `total_transfer_longs` on any generated
    /// Eulerian graph. Sequential in-process execution and a single-worker
    /// engine pin the partition execution order (ascending id on both), so
    /// fragment ids — and therefore the unrolled circuits — match exactly;
    /// the transfer accounting is order-independent and must also match the
    /// default parallel engine.
    #[test]
    fn pipeline_backends_produce_identical_circuits(
        seed in 0u64..500,
        n in 8u64..90,
        extra in 0usize..10,
        parts in 1u32..7,
    ) {
        let g = graph_from(seed, n, extra);
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let config = EulerConfig::default().sequential();

        let in_proc = EulerPipeline::builder()
            .graph(&g)
            .assignment(assignment.clone())
            .config(config.clone())
            .backend(InProcessBackend::new())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let bsp = EulerPipeline::builder()
            .graph(&g)
            .assignment(assignment.clone())
            .config(config)
            .backend(BspBackend::with_engine(BspConfig::with_workers(1)))
            .build()
            .unwrap()
            .run()
            .unwrap();

        // Identical circuits, edge for edge.
        prop_assert_eq!(&in_proc.circuit.result.circuits, &bsp.circuit.result.circuits);
        prop_assert_eq!(in_proc.merge.total_transfer_longs, bsp.merge.total_transfer_longs);
        prop_assert_eq!(in_proc.merge.supersteps, bsp.merge.supersteps);

        // The unified per-level records agree on every measurement-free field.
        prop_assert_eq!(in_proc.merge.per_partition.len(), bsp.merge.per_partition.len());
        for (a, b) in in_proc.merge.per_partition.iter().zip(&bsp.merge.per_partition) {
            prop_assert_eq!(a.level, b.level);
            prop_assert_eq!(a.partition, b.partition);
            prop_assert_eq!(a.counts, b.counts);
            prop_assert_eq!(a.complexity, b.complexity);
            prop_assert_eq!(a.memory_longs, b.memory_longs);
            prop_assert_eq!(a.remote_needed_now, b.remote_needed_now);
            prop_assert_eq!(a.transfer_in_longs, b.transfer_in_longs);
            prop_assert_eq!(a.paths_found, b.paths_found);
            prop_assert_eq!(a.cycles_found, b.cycles_found);
            prop_assert_eq!(a.internal_cycles_merged, b.internal_cycles_merged);
        }

        // Transfer accounting is order-independent: the default engine
        // (one worker per partition, parallel workers) must ship the same
        // number of Longs even though fragment ids may differ.
        let parallel_bsp = EulerPipeline::builder()
            .graph(&g)
            .assignment(assignment)
            .backend(BspBackend::new())
            .build()
            .unwrap()
            .run()
            .unwrap();
        prop_assert_eq!(parallel_bsp.merge.total_transfer_longs, in_proc.merge.total_transfer_longs);
        prop_assert!(verify_result(&g, &parallel_bsp.circuit.result).is_ok());
    }

    /// Determinism regression for the dense Phase-1 rewrite: on every
    /// partition of every generated Eulerian graph, the flat-array kernel
    /// (`run_phase1`) and the retained hash-map reference
    /// (`run_phase1_reference`) must produce bit-identical fragments, path
    /// maps and residual partition state.
    #[test]
    fn phase1_dense_matches_reference_semantics(
        seed in 0u64..500,
        n in 8u64..100,
        extra in 0usize..10,
        parts in 1u32..7,
        use_hash in any::<bool>(),
    ) {
        use euler_circuit::algo::phase1::{reference::run_phase1_reference, run_phase1};
        use euler_circuit::algo::{FragmentStore, WorkingPartition};
        let g = graph_from(seed, n, extra);
        let assignment = if use_hash {
            HashPartitioner::new(parts).partition(&g)
        } else {
            LdgPartitioner::new(parts).partition(&g)
        };
        let pg = PartitionedGraph::from_assignment(&g, &assignment).unwrap();
        for p in pg.partitions() {
            let mut wp_dense = WorkingPartition::from_partition(p);
            let mut wp_ref = wp_dense.clone();
            let store_dense = FragmentStore::new();
            let store_ref = FragmentStore::new();
            let out_dense = run_phase1(&mut wp_dense, &store_dense);
            let out_ref = run_phase1_reference(&mut wp_ref, &store_ref);
            prop_assert_eq!(out_dense.path_map, out_ref.path_map);
            prop_assert_eq!(out_dense.complexity, out_ref.complexity);
            // The splice-order index's counters are semantic, not
            // implementation detail: both kernels must report the same
            // pivot lookups, linked splices and materialised Longs.
            prop_assert_eq!(out_dense.splice, out_ref.splice);
            prop_assert_eq!(wp_dense.local_edges, wp_ref.local_edges);
            prop_assert_eq!(wp_dense.remote_edges, wp_ref.remote_edges);
            // Zero-copy diff through `with_all` (snapshot would clone both).
            store_dense.with_all(|frags_dense| {
                store_ref.with_all(|frags_ref| {
                    assert_eq!(frags_dense.len(), frags_ref.len());
                    for (d, r) in frags_dense.iter().zip(frags_ref) {
                        assert_eq!(d.id, r.id);
                        assert_eq!(d.kind, r.kind);
                        assert_eq!(&d.edges, &r.edges);
                    }
                })
            });
        }
    }

    /// Deep splice chains: on hub/star multigraphs (many internal cycles
    /// merging into one pending fragment, parallel edges included) the
    /// splice-order index must reproduce the reference's first-occurrence
    /// rotation semantics bit for bit — fragments, path maps, splice
    /// counters — and the wave walker must match the sequential kernel at
    /// every thread count. The full pipeline must still solve the graph.
    #[test]
    fn phase1_dense_matches_reference_on_hub_multigraphs(
        k in 3u64..24,
        petals in prop::collection::vec(0u8..6, 1..24),
        digons in prop::collection::vec(0u8..3, 0..12),
        parts in 1u32..5,
    ) {
        use euler_circuit::algo::phase1::{reference::run_phase1_reference, run_phase1, run_phase1_parallel};
        use euler_circuit::algo::{FragmentStore, Phase1Arena, WorkingPartition};
        let g = hub_multigraph(k, &petals, &digons);
        prop_assert!(is_eulerian(&g).is_ok());
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let pg = PartitionedGraph::from_assignment(&g, &assignment).unwrap();
        for p in pg.partitions() {
            let mut wp_dense = WorkingPartition::from_partition(p);
            let mut wp_ref = wp_dense.clone();
            let store_dense = FragmentStore::new();
            let store_ref = FragmentStore::new();
            let out_dense = run_phase1(&mut wp_dense, &store_dense);
            let out_ref = run_phase1_reference(&mut wp_ref, &store_ref);
            prop_assert_eq!(&out_dense.path_map, &out_ref.path_map);
            prop_assert_eq!(out_dense.splice, out_ref.splice);
            prop_assert_eq!(wp_dense.local_edges, wp_ref.local_edges);
            store_dense.with_all(|frags_dense| {
                store_ref.with_all(|frags_ref| {
                    assert_eq!(frags_dense.len(), frags_ref.len());
                    for (d, r) in frags_dense.iter().zip(frags_ref) {
                        assert_eq!(d.kind, r.kind);
                        assert_eq!(&d.edges, &r.edges, "splice order diverged");
                    }
                })
            });
            // The wave walker shares the splice-order commit path: every
            // thread count must stay bit-identical to sequential.
            for threads in [1usize, 2, 4] {
                let mut wp_par = WorkingPartition::from_partition(p);
                let store_par = FragmentStore::new();
                let mut arena = Phase1Arena::new();
                let out_par = run_phase1_parallel(&mut wp_par, &store_par, &mut arena, threads);
                prop_assert_eq!(&out_par.path_map, &out_dense.path_map);
                prop_assert_eq!(out_par.splice, out_dense.splice);
                prop_assert_eq!(&wp_par.local_edges, &wp_dense.local_edges);
                store_par.with_all(|frags_par| {
                    store_dense.with_all(|frags_dense| {
                        assert_eq!(frags_par.len(), frags_dense.len());
                        for (a, b) in frags_par.iter().zip(frags_dense) {
                            assert_eq!(&a.edges, &b.edges, "{threads} threads diverged");
                        }
                    })
                });
            }
        }
        // End to end: the hub storm still unrolls into one valid circuit.
        let (result, _) = run_pipeline(&g, &assignment, &EulerConfig::default());
        prop_assert!(verify_result(&g, &result).is_ok());
        prop_assert_eq!(result.total_edges(), g.num_edges());
    }

    /// Eulerization always produces a graph the pipeline can solve, whatever
    /// the input (including disconnected and odd-degree-heavy graphs).
    #[test]
    fn eulerized_arbitrary_graphs_are_solved(
        edges in prop::collection::vec((0u64..40, 0u64..40), 1..150),
        parts in 1u32..5,
    ) {
        let mut b = GraphBuilder::with_vertices(40);
        b.extend_edges(edges.iter().copied());
        let raw = b.build().unwrap();
        let (g, _) = eulerize(&raw);
        prop_assert!(is_eulerian(&g).is_ok());
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let (result, _) = run_pipeline(&g, &assignment, &EulerConfig::default());
        prop_assert!(verify_result(&g, &result).is_ok());
        prop_assert_eq!(result.total_edges(), g.num_edges());
    }

    /// `.ecsr` round-trip for the API redesign: any random multigraph packed
    /// to a binary CSR file and mapped back must yield the *same* partitions
    /// and — through the pipeline's direct slicing path — bit-identical
    /// circuits and transfer accounting to the in-memory source.
    #[test]
    fn csr_file_roundtrip_matches_in_memory_source(
        edges in prop::collection::vec((0u64..30, 0u64..30), 1..120),
        parts in 1u32..6,
        case in 0u64..1_000_000,
    ) {
        let mut b = GraphBuilder::with_vertices(30);
        b.extend_edges(edges.iter().copied());
        let (g, _) = eulerize(&b.build().unwrap());
        let assignment = LdgPartitioner::new(parts).partition(&g);
        let config = EulerConfig::default().sequential();

        let dir = std::env::temp_dir().join("euler_property_csr");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("roundtrip_{case}_{parts}.ecsr"));
        write_csr_file(&g, &path).unwrap();
        let source = MmapCsrSource::open(&path).unwrap();

        // The mapped file reconstructs the graph exactly...
        let reloaded = source.load().unwrap();
        prop_assert_eq!(reloaded.num_vertices(), g.num_vertices());
        prop_assert_eq!(reloaded.num_edges(), g.num_edges());
        for v in g.vertices() {
            prop_assert_eq!(reloaded.neighbors(v), g.neighbors(v));
        }
        // ...slices identical partitions...
        let sliced = source.csr().unwrap().partitioned(&assignment).unwrap();
        let built = PartitionedGraph::from_assignment(&g, &assignment).unwrap();
        prop_assert_eq!(sliced.cut_edges(), built.cut_edges());
        for (a, b) in sliced.partitions().iter().zip(built.partitions()) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(&a.internal, &b.internal);
            prop_assert_eq!(&a.boundary, &b.boundary);
            prop_assert_eq!(&a.local_edges, &b.local_edges);
            prop_assert_eq!(&a.remote_edges, &b.remote_edges);
        }
        // ...and the end-to-end runs are bit-identical.
        let from_csr = EulerPipeline::builder()
            .source(source)
            .assignment(assignment.clone())
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let from_mem = EulerPipeline::builder()
            .graph(&g)
            .assignment(assignment)
            .config(config)
            .build()
            .unwrap()
            .run()
            .unwrap();
        prop_assert_eq!(&from_csr.circuit.result.circuits, &from_mem.circuit.result.circuits);
        prop_assert_eq!(from_csr.merge.total_transfer_longs, from_mem.merge.total_transfer_longs);
        prop_assert!(verify_result(&g, &from_csr.circuit.result).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
