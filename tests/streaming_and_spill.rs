//! Property-based and end-to-end tests of the out-of-core data spine:
//! streaming partitioning of packed `.ecsr` files must equal the in-memory
//! partitioners bit for bit (assignments *and* circuits), the pipeline must
//! complete with **no `Graph` materialised** when a CSR source meets a
//! streaming partitioner, and a fragment `memory_budget` far below the total
//! fragment bytes must spill to disk while producing circuits bit-identical
//! to the unbounded run — including when the spill itself is interrupted.

use euler_circuit::algo::phase3::unroll;
use euler_circuit::algo::verify::verify_result;
use euler_circuit::algo::{
    Fragment, FragmentId, FragmentKind, FragmentStore, SpillConfig, TourEdge,
};
use euler_circuit::graph::{EdgeStream, GraphError};
use euler_circuit::partition::StreamingPartitioner;
use euler_circuit::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_ecsr(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("euler_streaming_spill_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// A graph source that refuses to materialise a `Graph`: the construction
/// hook every zero-`Graph` assertion in this file goes through. `load` and
/// `resident` are the only ways the pipeline can obtain a `Graph` from a
/// source, so a completed run through this wrapper proves none was built.
struct NoGraphSource {
    inner: MmapCsrSource,
}

impl GraphSource for NoGraphSource {
    fn name(&self) -> String {
        format!("no-graph wrapper over {}", self.inner.name())
    }

    fn load(&self) -> Result<Graph, GraphError> {
        panic!("the pipeline materialised a Graph on the zero-Graph path");
    }

    fn resident(&self) -> Option<&Graph> {
        None
    }

    fn csr(&self) -> Option<&CsrFile> {
        self.inner.csr()
    }

    fn edge_stream(&self) -> Option<Box<dyn EdgeStream + '_>> {
        self.inner.edge_stream()
    }
}

/// Measurement-free equality of two pipeline runs.
fn assert_same_circuits(a: &PipelineRun, b: &PipelineRun) {
    assert_eq!(a.circuit.result.circuits, b.circuit.result.circuits);
    assert_eq!(a.circuit.fragment_disk_longs, b.circuit.fragment_disk_longs);
    assert_eq!(a.merge.total_transfer_longs, b.merge.total_transfer_longs);
    assert_eq!(a.merge.supersteps, b.merge.supersteps);
}

#[test]
fn streaming_ldg_with_budget_runs_the_whole_pipeline_without_a_graph() {
    // The headline acceptance path: mmap source + streaming LDG + a fragment
    // budget far below the total fragment bytes. The NoGraphSource wrapper
    // panics on any load, so completion proves the zero-Graph spine.
    let g = synthetic::torus_grid(40, 40);
    let path = temp_ecsr("zero_graph_pipeline.ecsr");
    write_csr_file(&g, &path).unwrap();

    let reference = EulerPipeline::builder()
        .graph(&g)
        .partitioner(LdgPartitioner::new(4))
        .config(EulerConfig::default().sequential())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let budget = reference.circuit.fragment_disk_longs / 8;

    let run = EulerPipeline::builder()
        .source(NoGraphSource { inner: MmapCsrSource::open(&path).unwrap() })
        .partitioner(LdgPartitioner::new(4))
        .config(EulerConfig::default().sequential())
        .memory_budget(budget)
        .build()
        .unwrap()
        .run()
        .unwrap();

    assert!(run.partition.partitioner.contains("ldg (streamed"));
    assert_same_circuits(&run, &reference);
    verify_result(&g, &run.circuit.result).unwrap();
    let stats = run.circuit.fragment_stats;
    assert!(stats.spilled_fragments > 0, "budget {budget} must spill: {stats:?}");
    assert!(stats.spill_read_longs > 0, "phase 3 reloads spilled fragments");
    assert_eq!(stats.spill_errors, 0);
    assert!(stats.peak_resident_longs < run.circuit.fragment_disk_longs);
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming LDG/hash over a packed `.ecsr` file yields the identical
    /// `PartitionAssignment` — and, through the pipeline, bit-identical
    /// circuits — as the in-memory `Partitioner` on the same graph and seed.
    #[test]
    fn streaming_partitioning_of_packed_csr_matches_in_memory(
        seed in 0u64..500,
        n in 12u64..100,
        extra in 0usize..10,
        parts in 1u32..7,
        use_hash in any::<bool>(),
        hash_seed in 0u64..8,
    ) {
        let g = synthetic::random_eulerian_connected(n.max(4), extra, 5, seed);
        let path = temp_ecsr(&format!("prop_{seed}_{n}_{extra}_{parts}_{use_hash}.ecsr"));
        write_csr_file(&g, &path).unwrap();
        let source = MmapCsrSource::open(&path).unwrap();

        let (from_stream, from_graph) = if use_hash {
            let p = HashPartitioner::new(parts).with_seed(hash_seed);
            let mut stream = source.edge_stream().unwrap();
            (p.partition_stream(stream.as_mut()).unwrap(), p.partition(&g))
        } else {
            let p = LdgPartitioner::new(parts);
            let mut stream = source.edge_stream().unwrap();
            (p.partition_stream(stream.as_mut()).unwrap(), p.partition(&g))
        };
        prop_assert_eq!(from_stream.num_partitions(), from_graph.num_partitions());
        for v in g.vertices() {
            prop_assert_eq!(from_stream.partition_of(v), from_graph.partition_of(v));
        }

        // The full pipeline agrees too: zero-Graph streamed run vs loaded run.
        let config = EulerConfig::default().sequential();
        let streamed = if use_hash {
            EulerPipeline::builder()
                .source(NoGraphSource { inner: source })
                .partitioner(HashPartitioner::new(parts).with_seed(hash_seed))
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap()
        } else {
            EulerPipeline::builder()
                .source(NoGraphSource { inner: source })
                .partitioner(LdgPartitioner::new(parts))
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        let in_memory = if use_hash {
            EulerPipeline::builder()
                .graph(&g)
                .partitioner(HashPartitioner::new(parts).with_seed(hash_seed))
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap()
        } else {
            EulerPipeline::builder()
                .graph(&g)
                .partitioner(LdgPartitioner::new(parts))
                .config(config.clone())
                .build()
                .unwrap()
                .run()
                .unwrap()
        };
        assert_same_circuits(&streamed, &in_memory);
        prop_assert!(verify_result(&g, &streamed.circuit.result).is_ok());
        std::fs::remove_file(&path).ok();
    }

    /// A spill-backed run under a tiny budget produces bit-identical
    /// circuits and exact `disk_longs`/transfer accounting vs the in-memory
    /// backing, with the resident set actually bounded.
    #[test]
    fn spill_backed_runs_are_bit_identical_with_exact_accounting(
        seed in 0u64..500,
        n in 16u64..120,
        extra in 1usize..12,
        parts in 2u32..7,
        divisor in 4u64..20,
    ) {
        let g = synthetic::random_eulerian_connected(n.max(4), extra, 5, seed);
        let a = LdgPartitioner::new(parts).partition(&g);
        let config = EulerConfig::default().sequential();
        let unbounded = EulerPipeline::builder()
            .graph(&g)
            .assignment(a.clone())
            .config(config.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let budget = unbounded.circuit.fragment_disk_longs / divisor;
        let bounded = EulerPipeline::builder()
            .graph(&g)
            .assignment(a)
            .config(config.clone())
            .memory_budget(budget)
            .build()
            .unwrap()
            .run()
            .unwrap();
        assert_same_circuits(&bounded, &unbounded);
        let stats = bounded.circuit.fragment_stats;
        prop_assert!(stats.spilled_fragments > 0);
        prop_assert_eq!(stats.spill_errors, 0);
        // Once the run quiesces the resident set fits the budget exactly,
        // and everything not resident was actually written to the spill
        // file (spill_write_longs also counts superseded versions, hence
        // the lower bound).
        prop_assert!(stats.resident_longs <= budget,
            "resident {} over budget {budget}", stats.resident_longs);
        let live_spilled = bounded.circuit.fragment_disk_longs - stats.resident_longs;
        prop_assert!(stats.spill_write_longs >= live_spilled,
            "wrote {} but {live_spilled} Longs live on spill", stats.spill_write_longs);
    }
}

/// Phase-3 stitching through the backing seam with an interrupted spill: a
/// store whose spill directory cannot exist falls back to memory after the
/// first failed eviction and still unrolls the identical circuits with
/// identical accounting.
#[test]
fn interrupted_spill_still_unrolls_identical_circuits() {
    fn real(edge: u64, from: u64, to: u64) -> TourEdge {
        TourEdge::Real {
            edge: euler_circuit::graph::EdgeId(edge),
            from: VertexId(from),
            to: VertexId(to),
        }
    }
    // A nested workload: paths referenced as virtual edges, plus cycles that
    // must be spliced at shared vertices — every Phase-3 code path.
    fn fill(store: &FragmentStore) {
        let p = store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Path,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(10, 1, 2), real(11, 2, 3)],
        });
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 0,
            partition: PartitionId(0),
            edges: vec![real(20, 2, 7), real(21, 7, 2)],
        });
        store.push(Fragment {
            id: FragmentId(0),
            kind: FragmentKind::Cycle,
            level: 1,
            partition: PartitionId(0),
            edges: vec![
                real(0, 0, 1),
                TourEdge::Virtual { fragment: p, from: VertexId(1), to: VertexId(3) },
                real(1, 3, 0),
            ],
        });
    }
    let mem = FragmentStore::new();
    let spill = FragmentStore::spilling(SpillConfig::with_budget(0));
    let broken = FragmentStore::spilling(
        SpillConfig::with_budget(0).in_directory("/nonexistent/euler/spill"),
    );
    for store in [&mem, &spill, &broken] {
        fill(store);
    }
    let reference = unroll(&mem);
    let spilled = unroll(&spill);
    let recovered = unroll(&broken);
    assert_eq!(reference.circuits, spilled.circuits);
    assert_eq!(reference.circuits, recovered.circuits);
    assert_eq!(reference.total_edges(), 6);
    assert_eq!(mem.disk_longs(), spill.disk_longs());
    assert_eq!(mem.disk_longs(), broken.disk_longs());
    assert_eq!(mem.total_real_edges(), broken.total_real_edges());
    // The spill store really paged out; the broken one really failed and
    // recovered to full residency.
    assert!(spill.stats().spilled_fragments > 0);
    assert_eq!(spill.stats().resident_longs, 0);
    assert!(broken.stats().spill_errors > 0);
    assert_eq!(broken.stats().spilled_fragments, 0);
    assert_eq!(broken.stats().resident_longs, broken.disk_longs());
}

/// Phase 3 reads each spilled fragment exactly once. The cycle-splice index
/// is captured by the store while fragments are resident, so building the
/// pending-cycle set costs no spill I/O — historically it reloaded every
/// spilled fragment a second time, making `spill_read_longs` exactly double
/// `spill_write_longs` on a push-only store. This pins the fixed 1:1 ratio.
#[test]
fn phase3_reads_each_spilled_fragment_exactly_once() {
    // Push-only workload (no `replace`, so every written Long corresponds to
    // one live fragment version): partition-local cycles sharing vertices,
    // plus a path expanded through a virtual reference.
    fn real(edge: u64, from: u64, to: u64) -> TourEdge {
        TourEdge::Real {
            edge: euler_circuit::graph::EdgeId(edge),
            from: VertexId(from),
            to: VertexId(to),
        }
    }
    let store = FragmentStore::spilling(SpillConfig::with_budget(0));
    let p = store.push(Fragment {
        id: FragmentId(0),
        kind: FragmentKind::Path,
        level: 0,
        partition: PartitionId(0),
        edges: vec![real(10, 1, 2), real(11, 2, 3)],
    });
    store.push(Fragment {
        id: FragmentId(0),
        kind: FragmentKind::Cycle,
        level: 0,
        partition: PartitionId(0),
        edges: vec![real(20, 2, 7), real(21, 7, 2)],
    });
    store.push(Fragment {
        id: FragmentId(0),
        kind: FragmentKind::Cycle,
        level: 1,
        partition: PartitionId(0),
        edges: vec![
            real(0, 0, 1),
            TourEdge::Virtual { fragment: p, from: VertexId(1), to: VertexId(3) },
            real(1, 3, 0),
        ],
    });
    let result = unroll(&store);
    assert_eq!(result.total_edges(), 6);
    let stats = store.stats();
    assert!(stats.spilled_fragments > 0, "budget 0 must spill everything");
    assert_eq!(stats.spill_errors, 0);
    assert_eq!(
        stats.spill_read_longs, stats.spill_write_longs,
        "each spilled fragment must be read back exactly once: {stats:?}"
    );
}
