//! Differential conformance suite for the W-streaming Phase-1 pass: for
//! every `EdgeStream` producer (in-memory adjacency, memory-mapped `.ecsr`,
//! chunked edge-list file) × every backend (in-process, 1-worker BSP), the
//! streaming pipeline must produce valid Euler circuits covering the
//! *identical edge multiset* as the dense-arena kernel — on random Eulerized
//! multigraphs and on every degenerate shape (empty partition, single cycle,
//! self-loops, multi-edges, hub vertex).
//!
//! The suite also pins the memory contract that justifies the mode's
//! existence: peak resident traversal state is `O(n log n)` and does **not**
//! scale with the edge count `m`.

use euler_circuit::algo::verify::verify_result;
use euler_circuit::algo::{stream_phase1, FragmentStore};
use euler_circuit::graph::GraphEdgeStream;
use euler_circuit::prelude::*;
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("euler_wstream_equivalence_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Sorted edge-id multiset covered by a result's circuits.
fn edge_multiset(result: &CircuitResult) -> Vec<u64> {
    let mut ids: Vec<u64> =
        result.circuits.iter().flatten().map(|step| step.edge.0).collect();
    ids.sort_unstable();
    ids
}

/// Runs the dense reference and the W-streaming pipeline over every producer
/// × backend combination, asserting validity and edge-multiset equality.
fn assert_wstream_matches_dense(g: &Graph, assignment: &PartitionAssignment, tag: &str) {
    let config = EulerConfig::default().sequential();
    let dense = EulerPipeline::builder()
        .graph(g)
        .assignment(assignment.clone())
        .config(config.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    verify_result(g, &dense.circuit.result).unwrap();
    let dense_edges = edge_multiset(&dense.circuit.result);
    let expected: Vec<u64> = (0..g.num_edges()).collect();
    assert_eq!(dense_edges, expected, "{tag}: dense run must cover every edge once");

    let csr_path = temp_path(&format!("{tag}.ecsr"));
    write_csr_file(g, &csr_path).unwrap();
    let list_path = temp_path(&format!("{tag}.txt"));
    euler_circuit::graph::io::write_edge_list_file(g, &list_path).unwrap();

    for backend_name in ["in-process", "bsp-1-worker"] {
        for producer_name in ["in-memory", "mmap-csr", "edge-list"] {
            let builder = EulerPipeline::builder()
                .assignment(assignment.clone())
                .config(config.clone())
                .streaming_phase1(true);
            let builder = match producer_name {
                "in-memory" => builder.source(InMemorySource::new(g.clone())),
                "mmap-csr" => builder.source(MmapCsrSource::open(&csr_path).unwrap()),
                _ => builder.source(EdgeListFileSource::new(&list_path)),
            };
            let builder = match backend_name {
                "in-process" => builder.backend(InProcessBackend::new()),
                _ => builder.backend(BspBackend::with_engine(BspConfig::with_workers(1))),
            };
            let run = builder
                .build()
                .unwrap()
                .run()
                .unwrap_or_else(|e| {
                    panic!("{tag}: {producer_name} × {backend_name} failed: {e}")
                });
            verify_result(g, &run.circuit.result).unwrap_or_else(|e| {
                panic!("{tag}: {producer_name} × {backend_name} invalid circuit: {e}")
            });
            assert_eq!(
                edge_multiset(&run.circuit.result),
                dense_edges,
                "{tag}: {producer_name} × {backend_name} edge multiset diverges from dense"
            );
            let stats = run.merge.wstream.unwrap_or_else(|| {
                panic!("{tag}: {producer_name} × {backend_name} must report wstream stats")
            });
            assert_eq!(stats.edges_ingested, g.num_edges());
            assert_eq!(stats.num_vertices, g.num_vertices());
        }
    }
    std::fs::remove_file(&csr_path).ok();
    std::fs::remove_file(&list_path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random Eulerized multigraphs, random partition counts: every producer
    /// × backend combination agrees with the dense kernel.
    #[test]
    fn random_eulerian_multigraphs_agree_with_dense(
        seed in 0u64..500,
        n in 8u64..60,
        extra in 0usize..8,
        parts in 1u32..5,
    ) {
        let g = synthetic::random_eulerian_connected(n.max(4), extra, 5, seed);
        let a = LdgPartitioner::new(parts).partition(&g);
        assert_wstream_matches_dense(&g, &a, &format!("prop_{seed}_{n}_{extra}_{parts}"));
    }
}

#[test]
fn single_cycle_agrees_with_dense() {
    let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
    let a = PartitionAssignment::from_labels(vec![0, 0, 0, 1, 1], 2).unwrap();
    assert_wstream_matches_dense(&g, &a, "single_cycle");
}

#[test]
fn empty_partition_agrees_with_dense() {
    // Partition 1 owns no vertices at all; partition 2 owns one isolated
    // vertex with no edges.
    let mut b = GraphBuilder::with_vertices(5);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    let g = b.build().unwrap();
    let a = PartitionAssignment::from_labels(vec![0, 0, 0, 2, 2], 3).unwrap();
    assert_wstream_matches_dense(&g, &a, "empty_partition");
}

#[test]
fn self_loops_agree_with_dense() {
    // Self-loops at internal and boundary vertices, including doubled ones.
    let g = graph_from_edges(&[
        (0, 0),
        (0, 1),
        (1, 1),
        (1, 2),
        (2, 2),
        (2, 2),
        (2, 0),
    ]);
    let a = PartitionAssignment::from_labels(vec![0, 0, 1], 2).unwrap();
    assert_wstream_matches_dense(&g, &a, "self_loops");
}

#[test]
fn multi_edges_agree_with_dense() {
    // Parallel edges within and across partitions.
    let g = graph_from_edges(&[
        (0, 1),
        (0, 1),
        (1, 2),
        (1, 2),
        (2, 3),
        (2, 3),
        (3, 0),
        (3, 0),
    ]);
    let a = PartitionAssignment::from_labels(vec![0, 0, 1, 1], 2).unwrap();
    assert_wstream_matches_dense(&g, &a, "multi_edges");
}

#[test]
fn hub_vertex_agrees_with_dense() {
    // A high-degree hub: every spoke doubled so all degrees stay even. The
    // hub accumulates and releases chain ends continuously.
    let mut edges = Vec::new();
    for i in 1..=12u64 {
        edges.push((0, i));
        edges.push((0, i));
    }
    let g = graph_from_edges(&edges);
    let labels: Vec<u32> = (0..13).map(|v| (v % 3) as u32).collect();
    let a = PartitionAssignment::from_labels(labels, 3).unwrap();
    assert_wstream_matches_dense(&g, &a, "hub_vertex");
}

/// Builds a connected Eulerian multigraph with `n` vertices and `reps * n`
/// edges: a ring where every ring edge is repeated `reps` times (`reps`
/// even keeps every degree even).
fn multi_ring(n: u64, reps: usize) -> Graph {
    let mut b = GraphBuilder::with_vertices(n);
    for i in 0..n {
        for _ in 0..reps {
            b.add_edge(i, (i + 1) % n);
        }
    }
    b.build().unwrap()
}

/// The memory contract: peak resident traversal state fits the `O(n log n)`
/// envelope even when `m = 64 n`.
#[test]
fn peak_resident_state_fits_the_n_log_n_envelope() {
    let n = 256u64;
    let g = multi_ring(n, 64); // m = 64 n = 16384 edges
    let a = PartitionAssignment::from_labels(vec![0; n as usize], 1).unwrap();
    let store = FragmentStore::new();
    let mut stream = GraphEdgeStream::new(&g);
    let out = stream_phase1(&mut stream, &a, &store, 0).unwrap();
    assert_eq!(out.stats.edges_ingested, 64 * n);
    let log_n = 64 - n.leading_zeros() as u64;
    let envelope = 16 * n * (log_n + 2) + 64;
    assert!(
        out.stats.peak_resident_longs <= envelope,
        "peak {} Longs exceeds O(n log n) envelope {} (n = {n}, m = {})",
        out.stats.peak_resident_longs,
        envelope,
        64 * n
    );
}

/// Resident state must not scale with `m`: growing the edge count 16× while
/// holding `n` fixed may not even double the peak.
#[test]
fn peak_resident_state_is_independent_of_edge_count() {
    let n = 256u64;
    let a = PartitionAssignment::from_labels(vec![0; n as usize], 1).unwrap();
    let peak_for = |reps: usize| {
        let g = multi_ring(n, reps);
        let store = FragmentStore::new();
        let mut stream = GraphEdgeStream::new(&g);
        let out = stream_phase1(&mut stream, &a, &store, 0).unwrap();
        assert_eq!(out.stats.edges_ingested, reps as u64 * n);
        out.stats.peak_resident_longs
    };
    let peak_4n = peak_for(4);
    let peak_64n = peak_for(64);
    assert!(
        peak_64n < 2 * peak_4n,
        "peak grew with m: {peak_4n} Longs at m=4n vs {peak_64n} Longs at m=64n"
    );
}

/// The acceptance path: a packed `.ecsr` input, a streaming partitioner, the
/// W-streaming pass, and a fragment spill budget — the full out-of-core
/// spine — still matches the dense kernel's edge coverage.
#[test]
fn packed_csr_end_to_end_with_spill_budget() {
    let g = synthetic::torus_grid(16, 16);
    let path = temp_path("end_to_end.ecsr");
    write_csr_file(&g, &path).unwrap();
    let config = EulerConfig::default().sequential();

    let dense = EulerPipeline::builder()
        .graph(&g)
        .partitioner(LdgPartitioner::new(4))
        .config(config.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();

    let run = EulerPipeline::builder()
        .source(MmapCsrSource::open(&path).unwrap())
        .partitioner(LdgPartitioner::new(4))
        .config(config)
        .streaming_phase1(true)
        .memory_budget(dense.circuit.fragment_disk_longs / 8)
        .build()
        .unwrap()
        .run()
        .unwrap();

    verify_result(&g, &run.circuit.result).unwrap();
    assert_eq!(edge_multiset(&run.circuit.result), edge_multiset(&dense.circuit.result));
    assert!(run.partition.partitioner.contains("w-streaming"));
    let stats = run.merge.wstream.expect("streaming run reports wstream stats");
    let n = g.num_vertices();
    let log_n = 64 - n.leading_zeros() as u64;
    assert!(stats.peak_resident_longs <= 16 * n * (log_n + 2) + 64);
    assert!(run.circuit.fragment_stats.spilled_fragments > 0, "budget must force spilling");
    assert_eq!(run.circuit.fragment_stats.spill_errors, 0);
    std::fs::remove_file(&path).ok();
}
