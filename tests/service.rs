//! Integration tests for the service layer (`euler_core::service`): a
//! long-lived TCP server running many circuit requests concurrently under
//! one global memory budget.
//!
//! What must hold:
//!
//! * circuits streamed to concurrent TCP clients are bit-identical to the
//!   library path (`EulerPipeline::run` with the same configuration);
//! * a repeated request is a cache hit — the executed-run counter does not
//!   move and the bytes are the same;
//! * cancelling an admitted run frees its budget for a queued run, and the
//!   admission high-water mark never exceeds the cap (also property-tested
//!   over random request mixes);
//! * malformed input — unknown frame kinds, truncated payloads, raw
//!   garbage bytes on the socket — yields typed errors, keeps the
//!   connection (or at worst the server) alive, and never panics.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use euler_circuit::algo::service::{error_code, frame_kind};
use euler_circuit::prelude::*;
use proptest::prelude::*;

/// A connected Eulerian graph from a seed.
fn graph_from(seed: u64, n: u64, extra: usize) -> Graph {
    synthetic::random_eulerian_connected(n.max(4), extra, 5, seed)
}

/// Writes `g` to a fresh `.ecsr` under the system temp dir (no tempfile
/// crate in the build environment); pid + sequence keying keeps parallel
/// test binaries and reruns from colliding.
fn ecsr_path(g: &Graph, tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let path = std::env::temp_dir().join(format!(
        "euler-service-{}-{}-{}.ecsr",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    write_csr_file(g, &path).unwrap();
    path
}

fn bind(cap: u64, workers: usize) -> EulerService {
    EulerService::bind(ServiceConfig {
        memory_cap_longs: cap,
        workers,
        ..ServiceConfig::default()
    })
    .unwrap()
}

/// The library path the service must match bit for bit.
fn reference(path: &std::path::Path, opts: RunOptions) -> CircuitResult {
    let builder = EulerPipeline::builder()
        .source(MmapCsrSource::open(path).unwrap())
        .config(EulerConfig {
            merge_strategy: opts.strategy,
            fragment_memory_budget: Some(ServiceConfig::default().fragment_budget_longs),
            ..EulerConfig::default()
        })
        .backend(InProcessBackend::new().with_parallelism(Parallelism::IntraPartition));
    let builder = match opts.partitioner {
        PartitionerKind::Hash => builder.partitioner(HashPartitioner::new(opts.partitions)),
        PartitionerKind::Ldg => builder.partitioner(LdgPartitioner::new(opts.partitions)),
    };
    builder.build().unwrap().run().unwrap().circuit.result
}

#[test]
fn concurrent_clients_stream_circuits_bit_identical_to_the_library_path() {
    let g = graph_from(42, 120, 24);
    let path = ecsr_path(&g, "concurrent");
    let service = bind(1 << 22, 4);
    let endpoint = service.endpoint().to_string();

    let admin = ServiceClient::connect(&endpoint).unwrap();
    let info = admin.register(path.to_str().unwrap()).unwrap();
    assert_eq!(info.num_edges, g.num_edges());
    assert_eq!(info.num_vertices, g.num_vertices());

    let variants = [
        RunOptions {
            partitions: 2,
            strategy: MergeStrategy::Duplicated,
            partitioner: PartitionerKind::Hash,
        },
        RunOptions {
            partitions: 4,
            strategy: MergeStrategy::Deduplicated,
            partitioner: PartitionerKind::Ldg,
        },
        RunOptions {
            partitions: 3,
            strategy: MergeStrategy::Deferred,
            partitioner: PartitionerKind::Hash,
        },
    ];
    let outcomes: Vec<RunOutcome> = thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|&opts| {
                let endpoint = endpoint.clone();
                s.spawn(move || {
                    let client = ServiceClient::connect(&endpoint).unwrap();
                    client.run(info.checksum, opts).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for (opts, outcome) in variants.iter().zip(&outcomes) {
        assert!(!outcome.cached && !outcome.cancelled);
        assert!(outcome.admitted_longs > 0, "fresh runs hold real budget");
        let expect = reference(&path, *opts);
        assert_eq!(outcome.circuits, expect.circuits, "service vs library for {opts:?}");
        let summary = outcome.summary.expect("fresh runs carry a summary");
        assert!(summary.measured_longs > 0);
        assert_eq!(summary.estimated_longs, outcome.admitted_longs);
    }

    let stats = service.stats();
    assert_eq!(stats.runs_executed, 3);
    assert_eq!(stats.runs_cached, 0);
    assert_eq!(stats.admitted_longs, 0, "all budget returned");
    assert!(stats.peak_admitted_longs <= stats.memory_cap_longs);
    service.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_requests_hit_the_cache_without_recomputing() {
    let g = graph_from(7, 80, 12);
    let path = ecsr_path(&g, "cache");
    let service = bind(1 << 22, 2);
    let client = ServiceClient::connect(service.endpoint()).unwrap();
    let info = client.register(path.to_str().unwrap()).unwrap();

    let opts = RunOptions { partitions: 2, ..RunOptions::default() };
    let fresh = client.run(info.checksum, opts).unwrap();
    assert!(!fresh.cached);

    let before = client.stats().unwrap();
    let repeat = client.run(info.checksum, opts).unwrap();
    let after = client.stats().unwrap();
    assert!(repeat.cached);
    assert_eq!(repeat.admitted_longs, 0, "cache hits hold no budget");
    assert!(repeat.summary.is_none(), "no fresh accounting for a cached result");
    assert_eq!(repeat.circuits, fresh.circuits, "cached bytes are the computed bytes");
    assert_eq!(after.runs_executed, before.runs_executed, "no pipeline re-run");
    assert_eq!(after.runs_cached, before.runs_cached + 1);

    // Different options on the same graph are a different cache key.
    let other = client
        .run(info.checksum, RunOptions { partitions: 3, ..RunOptions::default() })
        .unwrap();
    assert!(!other.cached);
    assert_eq!(service.stats().runs_executed, 2);
    service.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn cancelling_an_admitted_run_frees_the_budget_for_a_queued_run() {
    // A cap so small every estimate clamps to it: admission is mutually
    // exclusive and the second run can only start once the first lets go.
    let cap = 1_000;
    let g = graph_from(11, 2_500, 500);
    let path = ecsr_path(&g, "cancel");
    let service = bind(cap, 4);
    let endpoint = service.endpoint().to_string();

    let a = ServiceClient::connect(&endpoint).unwrap();
    let info = a.register(path.to_str().unwrap()).unwrap();
    let opts_a = RunOptions { partitions: 8, ..RunOptions::default() };
    a.start_run(info.checksum, opts_a).unwrap();
    let admitted = loop {
        match a.next_event().unwrap() {
            RunEvent::Accepted { admitted_longs, cached } => {
                assert!(!cached);
                break admitted_longs;
            }
            RunEvent::Cancelled => panic!("cancelled before admission"),
            _ => {}
        }
    };
    assert_eq!(admitted, cap, "oversized estimates clamp to the cap");

    // B queues behind A's exclusive permit...
    let b = ServiceClient::connect(&endpoint).unwrap();
    let opts_b = RunOptions { partitions: 3, ..RunOptions::default() };
    b.start_run(info.checksum, opts_b).unwrap();

    // ...until A is cancelled.
    a.cancel().unwrap();
    loop {
        match a.next_event().unwrap() {
            RunEvent::Cancelled => break,
            RunEvent::Done { .. } => panic!("run A finished before the cancel landed"),
            _ => {}
        }
    }

    let mut steps = 0u64;
    let mut done = false;
    while !done {
        match b.next_event().unwrap() {
            RunEvent::Chunk { steps: chunk, .. } => steps += chunk.len() as u64,
            RunEvent::Done { total_edges, .. } => {
                assert_eq!(total_edges, g.num_edges());
                done = true;
            }
            RunEvent::Cancelled => panic!("run B was never cancelled"),
            _ => {}
        }
    }
    assert_eq!(steps, g.num_edges(), "the queued run completed in full");

    let stats = service.stats();
    assert_eq!(stats.runs_cancelled, 1);
    assert_eq!(stats.runs_executed, 1);
    assert_eq!(stats.admitted_longs, 0);
    assert_eq!(stats.peak_admitted_longs, cap, "never above the cap even when clamped");
    service.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn malformed_frames_yield_typed_errors_and_the_server_survives() {
    let g = graph_from(3, 40, 6);
    let path = ecsr_path(&g, "malformed");
    let service = bind(1 << 22, 2);
    let endpoint = service.endpoint().to_string();

    let words_to_bytes =
        |words: &[u64]| words.iter().flat_map(|w| w.to_le_bytes()).collect::<Vec<u8>>();
    let bytes_to_words = |bytes: &[u8]| {
        bytes.chunks(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect::<Vec<u64>>()
    };

    // A well-formed frame of an unknown kind: typed ERROR, connection lives.
    let conn =
        euler_circuit::bsp::connect_endpoint(&endpoint, 20, Duration::from_millis(10)).unwrap();
    conn.send(0x0099, &[]).unwrap();
    let (kind, payload) = conn.recv_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(kind, frame_kind::ERROR);
    assert_eq!(bytes_to_words(&payload)[0], error_code::BAD_REQUEST);

    // A truncated RUN payload on the same connection: typed ERROR again.
    conn.send(frame_kind::RUN, &words_to_bytes(&[12345, 2])).unwrap();
    let (kind, payload) = conn.recv_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(kind, frame_kind::ERROR);
    assert_eq!(bytes_to_words(&payload)[0], error_code::BAD_REQUEST);

    // A RUN for a checksum nobody registered: typed ERROR, not a hang.
    let run_words = words_to_bytes(&[0xDEAD_BEEF, 2, 0, 0]);
    conn.send(frame_kind::RUN, &run_words).unwrap();
    let (kind, payload) = conn.recv_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(kind, frame_kind::ERROR);
    assert_eq!(bytes_to_words(&payload)[0], error_code::UNKNOWN_GRAPH);

    // The connection still serves well-formed requests after all that.
    conn.send(frame_kind::STATS, &[]).unwrap();
    let (kind, _) = conn.recv_timeout(Some(Duration::from_secs(10))).unwrap();
    assert_eq!(kind, frame_kind::STATS_REPLY);

    // Raw garbage bytes on a fresh socket: the server drops that connection
    // (bad magic fails the frame codec) without taking the process down.
    {
        use std::io::{Read, Write};
        let addr = endpoint.strip_prefix("tcp:").unwrap();
        let mut raw = std::net::TcpStream::connect(addr).unwrap();
        raw.write_all(b"this is not a EULR frame at all, not even close....").unwrap();
        raw.flush().unwrap();
        raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut sink = [0u8; 64];
        // The server closes on us; either an orderly EOF (0 bytes) or a
        // reset error is acceptable — a panic or a hang is not.
        let _ = raw.read(&mut sink);
    }

    // And a real client still gets real service afterwards.
    let client = ServiceClient::connect(&endpoint).unwrap();
    let info = client.register(path.to_str().unwrap()).unwrap();
    let outcome =
        client.run(info.checksum, RunOptions { partitions: 2, ..RunOptions::default() }).unwrap();
    let steps: u64 = outcome.circuits.iter().map(|c| c.len() as u64).sum();
    assert_eq!(steps, g.num_edges());

    // Registering an unreadable path is a typed remote error too.
    let missing = client.register("/nonexistent/euler/service/missing.ecsr");
    match missing {
        Err(ServiceError::Remote { code, .. }) => assert_eq!(code, error_code::REGISTER_FAILED),
        other => panic!("expected a typed remote error, got {other:?}"),
    }

    service.shutdown();
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under random caps and random concurrent request mixes, the admission
    /// high-water mark never exceeds the cap and all budget drains back.
    #[test]
    fn admission_never_exceeds_the_cap_under_random_request_mixes(
        seed in 0u64..500,
        n in 8u64..48,
        extra in 0usize..8,
        cap in 64u64..50_000,
        parts in prop::collection::vec(1u32..6, 4),
        strategies in prop::collection::vec(0u8..3, 4),
    ) {
        let g = graph_from(seed, n, extra);
        let path = ecsr_path(&g, "admission");
        let service = bind(cap, 4);
        let endpoint = service.endpoint().to_string();
        let admin = ServiceClient::connect(&endpoint).unwrap();
        let info = admin.register(path.to_str().unwrap()).unwrap();

        let decode = |s: u8| match s {
            0 => MergeStrategy::Duplicated,
            1 => MergeStrategy::Deduplicated,
            _ => MergeStrategy::Deferred,
        };
        let outcomes: Vec<RunOutcome> = thread::scope(|s| {
            let handles: Vec<_> = parts
                .iter()
                .zip(strategies.iter())
                .map(|(&partitions, &strategy)| {
                    let endpoint = endpoint.clone();
                    let opts = RunOptions {
                        partitions,
                        strategy: decode(strategy),
                        ..RunOptions::default()
                    };
                    s.spawn(move || {
                        let client = ServiceClient::connect(&endpoint).unwrap();
                        client.run(info.checksum, opts).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        for outcome in &outcomes {
            prop_assert!(!outcome.cancelled);
            let steps: u64 = outcome.circuits.iter().map(|c| c.len() as u64).sum();
            prop_assert_eq!(steps, g.num_edges());
            prop_assert!(outcome.cached || outcome.admitted_longs <= cap);
        }
        let stats = service.stats();
        prop_assert!(stats.peak_admitted_longs <= cap, "peak {} over cap {}", stats.peak_admitted_longs, cap);
        prop_assert_eq!(stats.admitted_longs, 0);
        prop_assert!(stats.runs_executed >= 1);
        service.shutdown();
        std::fs::remove_file(&path).ok();
    }
}
