//! Fault-tolerance integration tests for the distributed (wire-transport)
//! pipeline path: clean distributed runs must be bit-identical to the
//! in-process sequential run, and — the headline — killing a worker
//! mid-superstep must end in automatic respawn, checkpoint restore (or
//! deterministic replay when checkpointing is off) and a final circuit that
//! is still bit-identical, with the recovery visible in
//! [`RunReport::warnings`] and the engine's recovery counters.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use euler_circuit::algo::verify::verify_result;
use euler_circuit::prelude::*;
use proptest::prelude::*;

/// Builds a connected Eulerian graph from a seed.
fn graph_from(seed: u64, n: u64, extra: usize) -> Graph {
    synthetic::random_eulerian_connected(n.max(4), extra, 5, seed)
}

/// A fresh scratch directory under the system temp dir (no tempfile crate in
/// the build environment). Callers clean up on success; stale dirs from
/// failed runs are keyed by pid so reruns never collide.
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "euler-ft-{}-{}-{}",
        tag,
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The measurement-free projection of a per-level record (timings differ run
/// to run; everything else must be bit-stable).
fn record_facts(r: &LevelPartitionReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.level,
        r.partition,
        r.counts,
        r.complexity,
        r.memory_longs,
        r.remote_needed_now,
        r.transfer_in_longs,
        (r.paths_found, r.cycles_found, r.internal_cycles_merged),
    )
}

/// Bit-identity across runs: circuits, transfer accounting, fragment
/// accounting and every per-level record.
fn assert_same_run(a: &PipelineRun, b: &PipelineRun) {
    assert_eq!(a.circuit.result.circuits, b.circuit.result.circuits);
    assert_eq!(a.merge.total_transfer_longs, b.merge.total_transfer_longs);
    assert_eq!(a.circuit.fragment_disk_longs, b.circuit.fragment_disk_longs);
    assert_eq!(a.merge.supersteps, b.merge.supersteps);
    assert_eq!(a.merge.per_partition.len(), b.merge.per_partition.len());
    for (x, y) in a.merge.per_partition.iter().zip(&b.merge.per_partition) {
        assert_eq!(record_facts(x), record_facts(y));
    }
}

/// The in-process sequential run every distributed run is judged against.
fn reference_run(g: &Graph, a: &PartitionAssignment, config: &EulerConfig) -> PipelineRun {
    EulerPipeline::builder()
        .graph(g)
        .assignment(a.clone())
        .config(config.clone())
        .backend(InProcessBackend::new())
        .build()
        .unwrap()
        .run()
        .unwrap()
}

fn distributed_run(
    g: &Graph,
    a: &PartitionAssignment,
    config: &EulerConfig,
    backend: BspBackend,
) -> PipelineRun {
    EulerPipeline::builder()
        .graph(g)
        .assignment(a.clone())
        .config(config.clone())
        .backend(backend)
        .build()
        .unwrap()
        .run()
        .unwrap()
}

/// A fault policy with test-friendly timings (the defaults keep a 5 s
/// heartbeat timeout, far too patient for a test suite).
fn fast_policy() -> FaultPolicy {
    FaultPolicy::default()
        .with_heartbeat_interval(Duration::from_millis(20))
        .with_heartbeat_timeout(Duration::from_millis(400))
}

// ---------------------------------------------------------------------------
// Clean runs: the wire transport changes nothing observable.
// ---------------------------------------------------------------------------

#[test]
fn mem_transport_thread_workers_match_in_process_run() {
    let g = graph_from(42, 120, 14);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);

    for workers in [1usize, 2, 4] {
        let run = distributed_run(
            &g,
            &a,
            &config,
            BspBackend::with_engine(BspConfig::with_workers(workers))
                .with_transport(Arc::new(MemTransport)),
        );
        assert!(verify_result(&g, &run.circuit.result).is_ok());
        assert_same_run(&reference, &run);
        assert!(run.merge.warnings.is_empty(), "clean run warned: {:?}", run.merge.warnings);
        let engine = run.merge.engine.as_ref().unwrap();
        assert_eq!(engine.num_workers, workers);
        assert!(!engine.recovery.any_recovery());
        // No checkpoint dir configured -> nothing written.
        assert_eq!(engine.recovery.checkpoints_written, 0);
    }
}

#[test]
fn tcp_transport_thread_workers_match_in_process_run() {
    let g = graph_from(7, 90, 10);
    let a = HashPartitioner::new(3).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(TcpTransport)),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
}

#[test]
fn checkpointing_alone_changes_nothing_and_cleans_up_after_itself() {
    let g = graph_from(11, 100, 12);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let ckpt = scratch_dir("clean-ckpt");
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(MemTransport))
            .checkpoint_dir(&ckpt),
    );
    assert_same_run(&reference, &run);
    let engine = run.merge.engine.as_ref().unwrap();
    // Every worker wrote its initial checkpoint plus one per superstep.
    assert!(engine.recovery.checkpoints_written >= engine.supersteps.len() as u64);
    assert!(engine.recovery.checkpoint_longs_written > 0);
    assert_eq!(engine.recovery.checkpoint_longs_restored, 0);
    // Clean completion removes the checkpoint directory.
    assert!(!ckpt.exists(), "checkpoint dir survived a clean run");
}

// ---------------------------------------------------------------------------
// Kill-and-resume: thread workers.
// ---------------------------------------------------------------------------

#[test]
fn killed_thread_worker_restores_from_checkpoint_bit_identically() {
    let g = graph_from(123, 140, 16);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let ckpt = scratch_dir("kill-ckpt");
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(MemTransport))
            .checkpoint_dir(&ckpt)
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::kill_at(1, 1)),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
    let engine = run.merge.engine.as_ref().unwrap();
    assert!(engine.recovery.restarts >= 1, "kill was not observed");
    assert!(engine.recovery.checkpoint_longs_restored > 0, "recovery did not restore state");
    assert!(
        run.merge.warnings.iter().any(|w| w.contains("worker")),
        "recovery left no warning: {:?}",
        run.merge.warnings
    );
    assert!(!ckpt.exists());
}

#[test]
fn killed_thread_worker_without_checkpoints_replays_bit_identically() {
    // No checkpoint dir: recovery must fall back to a full deterministic
    // replay from the seed partitions.
    let g = graph_from(5, 110, 12);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(MemTransport))
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::kill_at(0, 1)),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
    let engine = run.merge.engine.as_ref().unwrap();
    assert!(engine.recovery.restarts >= 1);
    assert!(engine.recovery.full_restarts >= 1, "expected a full replay");
    assert_eq!(engine.recovery.checkpoint_longs_restored, 0);
}

#[test]
fn kill_at_superstep_zero_recovers_from_the_initial_checkpoint() {
    let g = graph_from(99, 80, 8);
    let a = LdgPartitioner::new(3).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let ckpt = scratch_dir("kill-s0");
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(3))
            .with_transport(Arc::new(MemTransport))
            .checkpoint_dir(&ckpt)
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::kill_at(2, 0)),
    );
    assert_same_run(&reference, &run);
    assert!(run.merge.engine.as_ref().unwrap().recovery.restarts >= 1);
    assert!(!ckpt.exists());
}

// ---------------------------------------------------------------------------
// Message-level faults: dropped and delayed sends.
// ---------------------------------------------------------------------------

#[test]
fn dropped_start_message_is_recovered_via_heartbeat_timeout() {
    let g = graph_from(31, 90, 10);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let ckpt = scratch_dir("drop-send");
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(MemTransport))
            .checkpoint_dir(&ckpt)
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::drop_send(1)),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
    let engine = run.merge.engine.as_ref().unwrap();
    assert!(
        engine.recovery.heartbeat_misses >= 1 || engine.recovery.restarts >= 1,
        "dropped send went unnoticed: {:?}",
        engine.recovery
    );
    assert!(!ckpt.exists());
}

#[test]
fn delayed_start_message_is_absorbed_without_recovery() {
    // A delay shorter than the heartbeat timeout must be absorbed silently.
    let g = graph_from(8, 70, 8);
    let a = LdgPartitioner::new(3).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(MemTransport))
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::delay_send(1, Duration::from_millis(100))),
    );
    assert_same_run(&reference, &run);
    assert!(!run.merge.engine.as_ref().unwrap().recovery.any_recovery());
}

// ---------------------------------------------------------------------------
// Process workers: real processes, real SIGKILL.
// ---------------------------------------------------------------------------

#[test]
fn process_workers_over_tcp_match_in_process_run() {
    let g = graph_from(17, 100, 12);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(TcpTransport))
            .process_workers(true),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
}

#[test]
fn process_workers_over_unix_socket_match_in_process_run() {
    let g = graph_from(19, 80, 8);
    let a = HashPartitioner::new(3).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(3))
            .with_transport(Arc::new(UnixTransport::new()))
            .process_workers(true),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
}

#[test]
fn sigkilled_process_worker_is_respawned_and_restored_bit_identically() {
    let g = graph_from(55, 120, 14);
    let a = LdgPartitioner::new(4).partition(&g);
    let config = EulerConfig::default();
    let reference = reference_run(&g, &a, &config);
    let ckpt = scratch_dir("sigkill");
    let run = distributed_run(
        &g,
        &a,
        &config,
        BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(TcpTransport))
            .process_workers(true)
            .checkpoint_dir(&ckpt)
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::kill_at(0, 1)),
    );
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    assert_same_run(&reference, &run);
    let engine = run.merge.engine.as_ref().unwrap();
    assert!(engine.recovery.restarts >= 1, "SIGKILL was not observed");
    assert!(!ckpt.exists());
}

#[test]
fn process_workers_on_mem_transport_are_rejected_up_front() {
    let g = graph_from(3, 40, 4);
    let a = HashPartitioner::new(2).partition(&g);
    let err = EulerPipeline::builder()
        .graph(&g)
        .assignment(a)
        .config(EulerConfig::default())
        .backend(
            BspBackend::with_engine(BspConfig::with_workers(2))
                .with_transport(Arc::new(MemTransport))
                .process_workers(true),
        )
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("process"), "unexpected error: {msg}");
}

// ---------------------------------------------------------------------------
// Spill-degradation warnings surface in the report.
// ---------------------------------------------------------------------------

#[test]
fn broken_spill_directory_degrades_to_resident_with_a_warning() {
    let g = graph_from(21, 100, 12);
    let a = LdgPartitioner::new(4).partition(&g);
    // Point the spill directory at a path that cannot be a directory: a
    // regular file. Spill writes fail, fragments stay resident, the run
    // still succeeds, and the report says so.
    let blocker = scratch_dir("spill").join("blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let config = EulerConfig::default()
        .with_fragment_memory_budget(64)
        .with_fragment_spill_directory(blocker.join("spills"));
    let run = EulerPipeline::builder()
        .graph(&g)
        .assignment(a)
        .config(config)
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert!(verify_result(&g, &run.circuit.result).is_ok());
    let report = run.report();
    assert!(report.fragment_stats.spill_errors > 0, "spill never failed");
    assert!(
        report.warnings.iter().any(|w| w.contains("spill")),
        "no spill warning in {:?}",
        report.warnings
    );
    std::fs::remove_dir_all(blocker.parent().unwrap()).ok();
}

// ---------------------------------------------------------------------------
// Property: kill worker k at superstep s, resume, compare bit for bit —
// through both transports.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn kill_and_resume_is_bit_identical_on_mem_transport(
        seed in 0u64..400,
        n in 40u64..110,
        extra in 0usize..10,
        parts in 2u32..6,
        kill_worker in 0u32..2,
        kill_superstep in 0u32..2,
        checkpointed in any::<bool>(),
    ) {
        let g = graph_from(seed, n, extra);
        let a = LdgPartitioner::new(parts).partition(&g);
        let config = EulerConfig::default();
        let reference = reference_run(&g, &a, &config);
        // Clamp the kill to a superstep that exists for this tree height.
        let height = reference.merge.supersteps.saturating_sub(1);
        let kill_superstep = kill_superstep.min(height);
        let ckpt = checkpointed.then(|| scratch_dir("prop-mem"));
        let mut backend = BspBackend::with_engine(BspConfig::with_workers(2))
            .with_transport(Arc::new(MemTransport))
            .fault_policy(fast_policy())
            .with_fault_plan(FaultPlan::kill_at(kill_worker, kill_superstep));
        if let Some(dir) = &ckpt {
            backend = backend.checkpoint_dir(dir);
        }
        let run = distributed_run(&g, &a, &config, backend);
        prop_assert!(verify_result(&g, &run.circuit.result).is_ok());
        assert_same_run(&reference, &run);
        let engine = run.merge.engine.as_ref().unwrap();
        prop_assert!(engine.recovery.restarts >= 1);
        if let Some(dir) = &ckpt {
            prop_assert!(!dir.exists());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn kill_and_resume_is_bit_identical_on_tcp_transport(
        seed in 0u64..400,
        n in 40u64..90,
        parts in 2u32..5,
        kill_worker in 0u32..2,
        kill_superstep in 0u32..2,
    ) {
        let g = graph_from(seed, n, 6);
        let a = LdgPartitioner::new(parts).partition(&g);
        let config = EulerConfig::default();
        let reference = reference_run(&g, &a, &config);
        let height = reference.merge.supersteps.saturating_sub(1);
        let kill_superstep = kill_superstep.min(height);
        let ckpt = scratch_dir("prop-tcp");
        let run = distributed_run(
            &g,
            &a,
            &config,
            BspBackend::with_engine(BspConfig::with_workers(2))
                .with_transport(Arc::new(TcpTransport))
                .checkpoint_dir(&ckpt)
                .fault_policy(fast_policy())
                .with_fault_plan(FaultPlan::kill_at(kill_worker, kill_superstep)),
        );
        prop_assert!(verify_result(&g, &run.circuit.result).is_ok());
        assert_same_run(&reference, &run);
        prop_assert!(run.merge.engine.as_ref().unwrap().recovery.restarts >= 1);
        prop_assert!(!ckpt.exists());
    }
}
