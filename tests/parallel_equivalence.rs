//! Differential harness for the parallel Phase-1 walker: on random
//! Eulerized multigraphs, intra-partition parallel execution — any thread
//! count, either backend — must be **bit-identical** to the sequential
//! path: same circuits edge for edge, same per-level `RunReport` records,
//! same transfer accounting.
//!
//! This is the load-bearing invariant of the wave-speculation design (see
//! `euler_core::phase1::parallel`): parallelism may only change wall-clock,
//! never output. The sequential oracle is a `.sequential()` in-process run;
//! the BSP side runs on a single engine worker (the configuration whose
//! fragment-store append order is pinned, as in the PR-2 backend
//! equivalence proptest) with the wave walker enabled through the worker
//! loop's thread budget.

use euler_circuit::algo::verify::verify_result;
use euler_circuit::bsp::BspConfig;
use euler_circuit::prelude::*;
use proptest::prelude::*;

/// Thread counts the differential grid exercises.
const THREADS: [usize; 3] = [1, 2, 8];

/// The measurement-free projection of one per-level record (timings vary
/// run to run; everything else must be bit-stable).
#[derive(Debug, PartialEq)]
struct RecordFacts {
    level: u32,
    partition: PartitionId,
    counts: euler_circuit::algo::VertexTypeCounts,
    complexity: u64,
    memory_longs: u64,
    remote_needed_now: u64,
    transfer_in_longs: u64,
    paths: u64,
    cycles: u64,
    merged: u64,
}

fn facts(run: &PipelineRun) -> Vec<RecordFacts> {
    run.merge
        .per_partition
        .iter()
        .map(|r| RecordFacts {
            level: r.level,
            partition: r.partition,
            counts: r.counts,
            complexity: r.complexity,
            memory_longs: r.memory_longs,
            remote_needed_now: r.remote_needed_now,
            transfer_in_longs: r.transfer_in_longs,
            paths: r.paths_found,
            cycles: r.cycles_found,
            merged: r.internal_cycles_merged,
        })
        .collect()
}

/// Runs the sequential oracle, then the full (backend × thread-count) grid
/// of intra-partition parallel runs, asserting each equals the oracle.
fn assert_grid_matches_sequential(g: &Graph, assignment: &PartitionAssignment) {
    let sequential = EulerPipeline::builder()
        .graph(g)
        .assignment(assignment.clone())
        .config(EulerConfig::default().sequential())
        .build()
        .unwrap()
        .run()
        .unwrap();
    verify_result(g, &sequential.circuit.result).unwrap();
    let oracle_facts = facts(&sequential);

    for threads in THREADS {
        let in_proc = EulerPipeline::builder()
            .graph(g)
            .assignment(assignment.clone())
            .backend(
                InProcessBackend::new()
                    .with_parallelism(Parallelism::IntraPartition)
                    .with_threads(threads),
            )
            .build()
            .unwrap()
            .run()
            .unwrap();
        let bsp = EulerPipeline::builder()
            .graph(g)
            .assignment(assignment.clone())
            .backend(
                BspBackend::with_engine(BspConfig::with_workers(1).with_worker_threads(threads))
                    .with_parallelism(Parallelism::IntraPartition),
            )
            .build()
            .unwrap()
            .run()
            .unwrap();

        for (name, run) in [("in-process", &in_proc), ("bsp", &bsp)] {
            assert_eq!(
                run.circuit.result.circuits, sequential.circuit.result.circuits,
                "{name} circuits diverged at {threads} threads"
            );
            assert_eq!(
                run.merge.total_transfer_longs, sequential.merge.total_transfer_longs,
                "{name} transfer longs diverged at {threads} threads"
            );
            assert_eq!(run.merge.supersteps, sequential.merge.supersteps);
            assert_eq!(
                facts(run),
                oracle_facts,
                "{name} per-level records diverged at {threads} threads"
            );
            assert_eq!(
                run.circuit.fragment_disk_longs, sequential.circuit.fragment_disk_longs,
                "{name} fragment accounting diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random Eulerized multigraphs (parallel edges and self-loops from the
    /// eulerizer) through the whole grid.
    #[test]
    fn eulerized_multigraphs_are_thread_count_invariant(
        edges in prop::collection::vec((0u64..36, 0u64..36), 1..140),
        parts in 1u32..6,
        use_hash in any::<bool>(),
    ) {
        let mut b = GraphBuilder::with_vertices(36);
        b.extend_edges(edges.iter().copied());
        let (g, _) = eulerize(&b.build().unwrap());
        let assignment = if use_hash {
            HashPartitioner::new(parts).partition(&g)
        } else {
            LdgPartitioner::new(parts).partition(&g)
        };
        assert_grid_matches_sequential(&g, &assignment);
    }

    /// Connected random Eulerian graphs — denser walks, more merge levels.
    #[test]
    fn connected_eulerian_graphs_are_thread_count_invariant(
        seed in 0u64..1000,
        n in 10u64..110,
        extra in 0usize..12,
        parts in 1u32..7,
    ) {
        let g = synthetic::random_eulerian_connected(n.max(4), extra, 5, seed);
        let assignment = LdgPartitioner::new(parts).partition(&g);
        assert_grid_matches_sequential(&g, &assignment);
    }
}
